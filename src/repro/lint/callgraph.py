"""Project-level symbol table, call graph, and interprocedural facts.

The SRC8xx rules are deliberately *intraprocedural*: each looks at one
file's AST in isolation.  That misses exactly the hazards that take a
service down in production — a sync helper that blocks three calls away
from a coroutine, a task payload assembled by a factory that closes
over a lambda, module state mutated by something a pool task reaches
transitively.  This module builds the whole-program view the ``CONC9xx``
rules (:mod:`repro.lint.rules_conc`) consume:

* a **symbol table** over every analyzed file — modules, classes,
  functions and methods under dotted qualified names, plus each
  module's import bindings (absolute, relative, and aliased);
* a **call graph** — direct calls, attribute calls through imported
  modules, ``self.method()`` resolution inside a class, and functions
  registered as pool *task entry points* (values of a module-level
  ``str -> function`` registry dict, or callables handed to
  ``submit``-style dispatchers);
* **interprocedural fixed points** computed by the generic worklist
  solver of :mod:`repro.lint.dataflow` over the call graph's SCCs:
  transitive blocking reachability, task-entry reachability,
  transitive unpicklable closure of return values, and transitively
  held locks.

Extraction is *per file* and its result (:class:`ModuleSummary`) is a
plain JSON document, so the incremental cache
(:mod:`repro.lint.anacache`) can key it on the file's content hash and
skip re-parsing unchanged files.  Linking reruns from summaries, and
each SCC's fixed point is cached under a key derived from its members'
local facts, its internal edges, and the values flowing in from
upstream components — so a warm run over an unchanged tree re-solves
nothing.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ._graph import strongly_connected_components
from .dataflow import DataflowProblem, SetLattice, solve
from .source import SourceFile

#: Fully qualified stdlib calls that block the calling thread.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep() blocks",
    "os.system": "os.system() blocks",
    "subprocess.run": "subprocess.run() blocks",
    "subprocess.call": "subprocess.call() blocks",
    "subprocess.check_call": "subprocess.check_call() blocks",
    "subprocess.check_output": "subprocess.check_output() blocks",
}

#: Attribute calls that are synchronous waits whoever the owner is.
BLOCKING_ATTRS = {
    "result": ".result() is a synchronous future wait",
}

#: Dispatcher methods whose first callable argument becomes a task
#: entry point and whose payload arguments must survive pickling.
TASK_DISPATCH_CALLS = frozenset({"submit", "map_tasks", "run_task"})

#: Dispatchers that move work off the calling thread — the callable
#: they receive runs elsewhere, so calling *them* never blocks the
#: caller and their arguments' blocking facts must not propagate.
EXECUTOR_SHIELDS = frozenset({"run_in_executor", "to_thread"})


def module_name_for(path: str) -> str:
    """Dotted module name derived from a file path.

    ``src/repro/lint/engine.py`` -> ``repro.lint.engine`` (everything
    after the last ``src`` component), ``pkg/__init__.py`` -> ``pkg``.
    Deterministic, so cached summaries and fresh ones always agree.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path


def _own_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


# ----------------------------------------------------------------------
# Per-file summaries (JSON documents; what the incremental cache stores)
# ----------------------------------------------------------------------
@dataclass
class FunctionSummary:
    """Everything the interprocedural analyses need about one function."""

    qualname: str
    module: str
    path: str
    lineno: int
    #: First decorator's line (== ``lineno`` without decorators); a
    #: pragma above it covers the whole decorated definition.
    pragma_lineno: int
    is_async: bool = False
    #: Defined inside another function — unpicklable as a task payload.
    nested: bool = False
    #: Raw call references ``(lineno, ref)``; refs resolve at link time.
    calls: List[Tuple[int, List[str]]] = field(default_factory=list)
    #: Direct blocking operations ``(lineno, reason)``.
    blocking: List[Tuple[int, str]] = field(default_factory=list)
    #: Module-global rebinds ``(lineno, name, under_lock)``.
    global_writes: List[Tuple[int, str, bool]] = field(default_factory=list)
    #: Reasons this function's return value cannot pickle (direct).
    returns_unpicklable: List[str] = field(default_factory=list)
    #: Refs whose call result this function returns (pickle closure).
    return_calls: List[List[str]] = field(default_factory=list)
    #: Task dispatch sites ``(lineno, display, name_refs, call_refs)``.
    payload_sites: List[Tuple[int, str, List[List[str]], List[List[str]]]] = (
        field(default_factory=list)
    )
    #: Function refs this function registers as task entry points.
    entry_refs: List[List[str]] = field(default_factory=list)
    #: Explicit ``X.acquire()`` sites ``(lineno, lock_id, guaranteed)``
    #: where ``guaranteed`` means some release sits in a ``finally``.
    lock_acquires: List[Tuple[int, str, bool]] = field(default_factory=list)
    #: Lock identifiers this function acquires (``with`` or .acquire()).
    locks_used: List[str] = field(default_factory=list)
    #: Directly nested acquisition pairs ``(lineno, outer, inner)``.
    lock_pairs: List[Tuple[int, str, str]] = field(default_factory=list)
    #: Calls made while holding locks ``(lineno, lock_id, ref)``.
    held_calls: List[Tuple[int, str, List[str]]] = field(default_factory=list)

    def to_doc(self) -> Dict:
        return {
            "qualname": self.qualname, "module": self.module,
            "path": self.path, "lineno": self.lineno,
            "pragma_lineno": self.pragma_lineno,
            "is_async": self.is_async, "nested": self.nested,
            "calls": self.calls, "blocking": self.blocking,
            "global_writes": self.global_writes,
            "returns_unpicklable": self.returns_unpicklable,
            "return_calls": self.return_calls,
            "payload_sites": self.payload_sites,
            "entry_refs": self.entry_refs,
            "lock_acquires": self.lock_acquires,
            "locks_used": self.locks_used,
            "lock_pairs": self.lock_pairs,
            "held_calls": self.held_calls,
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "FunctionSummary":
        summary = cls(
            qualname=doc["qualname"], module=doc["module"],
            path=doc["path"], lineno=doc["lineno"],
            pragma_lineno=doc["pragma_lineno"],
            is_async=doc["is_async"], nested=doc["nested"],
        )
        summary.calls = [(ln, list(ref)) for ln, ref in doc["calls"]]
        summary.blocking = [tuple(item) for item in doc["blocking"]]
        summary.global_writes = [tuple(item) for item in doc["global_writes"]]
        summary.returns_unpicklable = list(doc["returns_unpicklable"])
        summary.return_calls = [list(ref) for ref in doc["return_calls"]]
        summary.payload_sites = [
            (ln, disp, [list(r) for r in names], [list(r) for r in calls])
            for ln, disp, names, calls in doc["payload_sites"]
        ]
        summary.entry_refs = [list(ref) for ref in doc["entry_refs"]]
        summary.lock_acquires = [tuple(item) for item in doc["lock_acquires"]]
        summary.locks_used = list(doc["locks_used"])
        summary.lock_pairs = [tuple(item) for item in doc["lock_pairs"]]
        summary.held_calls = [
            (ln, lock, list(ref)) for ln, lock, ref in doc["held_calls"]
        ]
        return summary


@dataclass
class ModuleSummary:
    """One file's extraction result: bindings plus function summaries."""

    module: str
    path: str
    #: Local name -> fully qualified target (imports + own top-level defs).
    bindings: Dict[str, str] = field(default_factory=dict)
    #: Local alias -> module for wholesale imports (``import x as y``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: Class name -> method names defined on it.
    classes: Dict[str, List[str]] = field(default_factory=dict)
    functions: List[FunctionSummary] = field(default_factory=list)
    #: Entry refs registered at module level (``TASKS = {"n": fn}``).
    entry_refs: List[List[str]] = field(default_factory=list)

    def to_doc(self) -> Dict:
        return {
            "module": self.module, "path": self.path,
            "bindings": self.bindings,
            "module_aliases": self.module_aliases,
            "classes": self.classes,
            "functions": [fn.to_doc() for fn in self.functions],
            "entry_refs": self.entry_refs,
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "ModuleSummary":
        return cls(
            module=doc["module"], path=doc["path"],
            bindings=dict(doc["bindings"]),
            module_aliases=dict(doc["module_aliases"]),
            classes={k: list(v) for k, v in doc["classes"].items()},
            functions=[FunctionSummary.from_doc(d) for d in doc["functions"]],
            entry_refs=[list(ref) for ref in doc["entry_refs"]],
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _resolve_relative(module: str, level: int, target: str) -> str:
    """Absolute dotted name of a ``from ...x import`` base."""
    base = module.split(".")
    # Level 1 is "the current package": drop the module's own leaf.
    parts = base[: max(len(base) - level, 0)]
    if target:
        parts += target.split(".")
    return ".".join(parts)


def _call_ref(expr: ast.AST, class_name: str = "") -> Optional[List[str]]:
    """A raw, serializable reference for a callable expression."""
    if isinstance(expr, ast.Name):
        return ["name", expr.id]
    if isinstance(expr, ast.Attribute):
        value = expr.value
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls") and class_name:
                return ["method", class_name, expr.attr]
            return ["attr", value.id, expr.attr]
        if isinstance(value, ast.Attribute):
            # Dotted owner (``pkg.mod.f()``): keep the full owner path.
            parts: List[str] = []
            node: ast.AST = value
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                parts.append(node.id)
                return ["attr", ".".join(reversed(parts)), expr.attr]
    return None


def _unpicklable_reason(node: ast.AST) -> str:
    """Why an expression node cannot cross the pickle boundary."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "open"
    ):
        return "an open file handle"
    return ""


class _Extractor(ast.NodeVisitor):
    """One pass over a module AST building its :class:`ModuleSummary`."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.module = module_name_for(source.path)
        self.summary = ModuleSummary(module=self.module, path=source.path)
        self._class_stack: List[str] = []
        self._function_stack: List[FunctionSummary] = []
        self._globals_stack: List[Set[str]] = []
        self._lock_stack: List[str] = []

    # -- bindings -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.summary.module_aliases[alias.asname] = alias.name
                self.summary.bindings[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.summary.module_aliases[root] = root
                self.summary.bindings[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = (
            _resolve_relative(self.module, node.level, node.module or "")
            if node.level else (node.module or "")
        )
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.summary.bindings[local] = (
                f"{base}.{alias.name}" if base else alias.name
            )

    # -- definitions ----------------------------------------------------
    def _qualname(self, name: str) -> str:
        parts = [self.module]
        parts += self._class_stack
        parts += [fn.qualname.rsplit(".", 1)[-1] for fn in self._function_stack]
        parts.append(name)
        return ".".join(parts)

    def _visit_function(self, node, is_async: bool) -> None:
        qualname = self._qualname(node.name)
        if not self._class_stack and not self._function_stack:
            self.summary.bindings.setdefault(node.name, qualname)
        pragma_lineno = min(
            [d.lineno for d in node.decorator_list] + [node.lineno]
        )
        summary = FunctionSummary(
            qualname=qualname, module=self.module, path=self.source.path,
            lineno=node.lineno, pragma_lineno=pragma_lineno,
            is_async=is_async, nested=bool(self._function_stack),
        )
        self.summary.functions.append(summary)
        declared = {
            name
            for child in _own_nodes(node)
            if isinstance(child, ast.Global)
            for name in child.names
        }
        self._function_stack.append(summary)
        self._globals_stack.append(declared)
        saved_locks, self._lock_stack = self._lock_stack, []
        for child in node.body:
            self.visit(child)
        self._detect_release_discipline(node, summary)
        self._lock_stack = saved_locks
        self._globals_stack.pop()
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._class_stack and not self._function_stack:
            self.summary.bindings.setdefault(
                node.name, f"{self.module}.{node.name}"
            )
        self._class_stack.append(node.name)
        methods = self.summary.classes.setdefault(node.name, [])
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(child.name)
            self.visit(child)
        self._class_stack.pop()

    # -- statements inside functions ------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_module_binding(node.targets)
        self._record_global_writes(node, node.targets)
        self._record_entry_registry(node.value)
        self.generic_visit(node)

    def _record_module_binding(self, targets) -> None:
        """Module-level names (lock objects, registries) get qualnames.

        Needed so two functions taking ``with a_lock:`` agree that it
        is the *same* lock — identity through the module symbol, not
        the local spelling.
        """
        if self._function_stack or self._class_stack:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.summary.bindings.setdefault(
                    target.id, f"{self.module}.{target.id}"
                )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_global_writes(node, [node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_module_binding([node.target])
        self._record_global_writes(node, [node.target])
        if node.value is not None:
            self._record_entry_registry(node.value)
        self.generic_visit(node)

    def _record_global_writes(self, node, targets) -> None:
        if not self._function_stack or not self._globals_stack[-1]:
            return
        declared = self._globals_stack[-1]
        rebound: Set[str] = set()
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                rebound.add(target.id)
        for name in sorted(rebound):
            self._function_stack[-1].global_writes.append(
                (node.lineno, name, bool(self._lock_stack))
            )

    def _record_entry_registry(self, value: ast.AST) -> None:
        """``REGISTRY = {"name": fn, ...}`` marks fns as task entries.

        Only module-level string-keyed dict literals whose values are
        all plain references count — exactly the pool's task-registry
        shape, without turning every dict literal into entry points.
        """
        if self._function_stack or self._class_stack:
            return
        if not isinstance(value, ast.Dict) or not value.values:
            return
        refs: List[List[str]] = []
        for key, entry in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                return
            ref = _call_ref(entry)
            if ref is None:
                return
            refs.append(ref)
        self.summary.entry_refs.extend(refs)

    def visit_Return(self, node: ast.Return) -> None:
        if self._function_stack and node.value is not None:
            summary = self._function_stack[-1]
            for leaf in ast.walk(node.value):
                reason = _unpicklable_reason(leaf)
                if reason:
                    summary.returns_unpicklable.append(reason)
            if isinstance(node.value, ast.Call):
                ref = _call_ref(
                    node.value.func,
                    self._class_stack[-1] if self._class_stack else "",
                )
                if ref is not None:
                    summary.return_calls.append(ref)
        self.generic_visit(node)

    # -- locks ----------------------------------------------------------
    def _lock_id(self, expr: ast.AST) -> str:
        """Stable identity for a lock expression, ``''`` when not one.

        Anything whose terminal name contains ``lock`` counts.  Module-
        level locks resolve through the bindings to a project-wide
        name; ``self._lock`` resolves to ``module.Class._lock``;
        locals fall back to a function-scoped id so two unrelated
        helper locks never collide across functions.
        """
        name = ""
        owner = ""
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
            if isinstance(expr.value, ast.Name):
                owner = expr.value.id
            else:
                return ""
        if "lock" not in name.lower():
            return ""
        if owner in ("self", "cls"):
            if self._class_stack:
                return f"{self.module}.{self._class_stack[-1]}.{name}"
            return ""
        if owner:
            # ``import pkg.mod as m`` lands in module_aliases; a
            # submodule pulled in with ``from pkg import mod`` only in
            # bindings — either way the lock belongs to the target.
            target = self.summary.module_aliases.get(
                owner
            ) or self.summary.bindings.get(owner)
            if target:
                return f"{target}.{name}"
            return f"{self.module}.<{owner}.{name}>"
        bound = self.summary.bindings.get(name)
        if bound:
            return bound
        if self._function_stack:
            # Not bound at module scope: a local lock object.
            return f"{self._function_stack[-1].qualname}.<{name}>"
        return f"{self.module}.{name}"

    def _visit_with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock_id = self._lock_id(item.context_expr)
            if lock_id:
                acquired.append(lock_id)
        if self._function_stack and acquired:
            summary = self._function_stack[-1]
            for lock_id in acquired:
                for held in self._lock_stack:
                    if held != lock_id:
                        summary.lock_pairs.append((node.lineno, held, lock_id))
                summary.locks_used.append(lock_id)
        self._lock_stack.extend(acquired)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for child in node.body:
            self.visit(child)
        if acquired:
            del self._lock_stack[-len(acquired):]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _detect_release_discipline(self, node, summary) -> None:
        """Explicit acquire/release pairing inside one function body.

        An ``X.acquire()`` is *guaranteed* released when some
        ``X.release()`` sits in a ``finally`` block; when the only
        releases are on ordinary paths, the happy path holds and every
        exception path leaks the lock.  Functions that never release a
        lock they acquire are left alone — ownership may legitimately
        be handed off (a pool's collector releases what submit took).
        """
        finally_nodes: Set[int] = set()
        for child in _own_nodes(node):
            if isinstance(child, ast.Try):
                for stmt in child.finalbody:
                    finally_nodes.add(id(stmt))
                    for sub in ast.walk(stmt):
                        finally_nodes.add(id(sub))
        acquires: List[Tuple[int, str]] = []
        releases: Dict[str, List[bool]] = {}
        for child in _own_nodes(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("acquire", "release"):
                continue
            lock_id = self._lock_id(func.value)
            if not lock_id:
                continue
            if func.attr == "acquire":
                acquires.append((child.lineno, lock_id))
                summary.locks_used.append(lock_id)
            else:
                releases.setdefault(lock_id, []).append(
                    id(child) in finally_nodes
                )
        for lineno, lock_id in acquires:
            seen = releases.get(lock_id)
            if seen is None:
                continue  # released elsewhere; not judged locally
            summary.lock_acquires.append((lineno, lock_id, any(seen)))

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        class_name = self._class_stack[-1] if self._class_stack else ""
        ref = _call_ref(node.func, class_name)
        summary = self._function_stack[-1] if self._function_stack else None
        callee_name = ""
        if isinstance(node.func, ast.Attribute):
            callee_name = node.func.attr
        elif isinstance(node.func, ast.Name):
            callee_name = node.func.id
        if summary is not None and ref is not None:
            summary.calls.append((node.lineno, ref))
            for held in self._lock_stack:
                summary.held_calls.append((node.lineno, held, ref))
            reason = self._blocking_reason(ref, callee_name)
            if reason:
                summary.blocking.append((node.lineno, reason))
        if callee_name in TASK_DISPATCH_CALLS:
            self._record_dispatch(node, summary, class_name)
        if callee_name in EXECUTOR_SHIELDS:
            # Arguments of run_in_executor/to_thread run off-thread;
            # do not walk them into this function's call facts.
            self.visit(node.func)
            return
        self.generic_visit(node)

    def _blocking_reason(self, ref: List[str], callee_name: str) -> str:
        """Direct blocking fact for a call ref, resolved via bindings."""
        target = ""
        if ref[0] == "name":
            target = self.summary.bindings.get(ref[1], "")
        elif ref[0] == "attr":
            owner = self.summary.module_aliases.get(ref[1], ref[1])
            target = f"{owner}.{ref[2]}"
        if target in BLOCKING_CALLS:
            return BLOCKING_CALLS[target]
        if ref[0] in ("attr", "method") and callee_name in BLOCKING_ATTRS:
            return BLOCKING_ATTRS[callee_name]
        return ""

    def _record_dispatch(self, node: ast.Call, summary, class_name) -> None:
        """A ``submit``-style call: entry refs + payload pickle facts."""
        display = (
            node.func.attr if isinstance(node.func, ast.Attribute)
            else getattr(node.func, "id", "dispatch")
        )
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        name_refs: List[List[str]] = []
        call_refs: List[List[str]] = []
        for index, argument in enumerate(arguments):
            if isinstance(argument, (ast.Name, ast.Attribute)):
                ref = _call_ref(argument, class_name)
                if ref is not None:
                    if index == 0:
                        # First-position callables become task entries.
                        self.summary.entry_refs.append(ref)
                    name_refs.append(ref)
                    continue
            for leaf in ast.walk(argument):
                if isinstance(leaf, ast.Call):
                    sub = _call_ref(leaf.func, class_name)
                    if sub is not None:
                        call_refs.append(sub)
        if summary is not None:
            summary.payload_sites.append(
                (node.lineno, display, name_refs, call_refs)
            )


def extract_module(source: SourceFile) -> ModuleSummary:
    """Parse one file and extract its :class:`ModuleSummary`."""
    extractor = _Extractor(source)
    extractor.visit(source.tree)
    return extractor.summary


# ----------------------------------------------------------------------
# Linking: summaries -> symbol table + call graph
# ----------------------------------------------------------------------
@dataclass
class AnalysisStats:
    """Cache effectiveness counters for one :func:`build_project` run."""

    files_parsed: int = 0
    files_cached: int = 0
    sccs_solved: int = 0
    sccs_reused: int = 0


@dataclass
class ProjectAnalysis:
    """The linked whole-program view the CONC9xx rules consume."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    files: Dict[str, SourceFile] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: Resolved call edges ``(caller_qual, callee_qual, lineno)``.
    call_edges: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Task entry-point qualnames.
    entries: FrozenSet[str] = frozenset()
    #: qualname -> blocking reasons reachable through sync callees.
    blocking: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: qualname -> task entries that transitively reach it.
    entry_reach: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: qualname -> why its (transitive) return value cannot pickle.
    unpicklable: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: qualname -> locks transitively acquired beneath it.
    locks_held: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    stats: AnalysisStats = field(default_factory=AnalysisStats)

    def source_for(self, summary: FunctionSummary) -> Optional[SourceFile]:
        """The source file a summary came from (for pragma lookups)."""
        return self.files.get(summary.path)

    def resolve(
        self, module: str, ref: Sequence[str], scope: str = ""
    ) -> Optional[str]:
        """Resolve a raw ref in ``module``'s scope to a qualname.

        ``scope`` is the qualname of the function the ref appeared in;
        enclosing-scope names (nested functions) resolve through it.
        """
        return _resolve_ref(self, self.modules.get(module), ref, scope)


def _resolve_ref(
    project: ProjectAnalysis,
    mod: Optional[ModuleSummary],
    ref: Sequence[str],
    scope: str = "",
) -> Optional[str]:
    if mod is None or not ref:
        return None
    kind = ref[0]
    if kind == "name":
        # Lexical scoping: a bare name inside ``mod.outer`` may be the
        # nested ``mod.outer.inner``; try enclosing scopes innermost
        # first, then the module bindings.
        prefix = scope
        while prefix:
            candidate = f"{prefix}.{ref[1]}"
            if candidate in project.functions:
                return candidate
            prefix = prefix.rpartition(".")[0]
            if prefix == mod.module:
                break
        target = mod.bindings.get(ref[1], f"{mod.module}.{ref[1]}")
        return target if target in project.functions else None
    if kind == "method":
        target = f"{mod.module}.{ref[1]}.{ref[2]}"
        return target if target in project.functions else None
    if kind == "attr":
        owner = mod.module_aliases.get(ref[1]) or mod.bindings.get(ref[1])
        if owner is None:
            return None
        target = f"{owner}.{ref[2]}"
        return target if target in project.functions else None
    return None


def link_project(
    modules: Sequence[ModuleSummary],
    files: Dict[str, SourceFile],
    stats: Optional[AnalysisStats] = None,
) -> ProjectAnalysis:
    """Build the symbol table and resolve every raw reference."""
    project = ProjectAnalysis(stats=stats or AnalysisStats())
    for mod in modules:
        project.modules[mod.module] = mod
        for fn in mod.functions:
            project.functions[fn.qualname] = fn
    project.files = dict(files)
    entries: Set[str] = set()
    for mod in modules:
        refs = list(mod.entry_refs)
        for fn in mod.functions:
            refs.extend(fn.entry_refs)
        for ref in refs:
            target = _resolve_ref(project, mod, ref)
            if target is not None:
                entries.add(target)
        for fn in mod.functions:
            for lineno, ref in fn.calls:
                target = _resolve_ref(project, mod, ref, scope=fn.qualname)
                if target is not None and target != fn.qualname:
                    project.call_edges.append((fn.qualname, target, lineno))
    project.entries = frozenset(entries)
    return project


# ----------------------------------------------------------------------
# Interprocedural fixed points over call-graph SCCs
# ----------------------------------------------------------------------
def _scc_key(analysis: str, member_facts, intra_edges) -> str:
    payload = json.dumps(
        [analysis, member_facts, intra_edges],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def _solve_union(
    names: Sequence[str],
    flow_edges: Sequence[Tuple[str, str]],
    facts: Dict[str, FrozenSet[str]],
    analysis: str,
    cache=None,
    stats: Optional[AnalysisStats] = None,
) -> Dict[str, FrozenSet[str]]:
    """May-union fixed point over the call graph, one SCC at a time.

    ``flow_edges`` are already oriented in flow direction (a value
    moves ``src -> dst``) and the transfer function is the identity,
    so all analysis-specific logic lives in how callers orient edges
    and seed ``facts``.  Each SCC is solved with the generic worklist
    engine (:func:`repro.lint.dataflow.solve`); its fixed point is
    cached under a key derived from the members' local facts, the
    intra-SCC edges, and the *values* flowing in from upstream SCCs,
    so an unchanged component with unchanged inputs never re-solves.
    """
    ids = {name: index for index, name in enumerate(names)}
    succs: Dict[int, List[int]] = {index: [] for index in range(len(names))}
    flow_in: Dict[int, List[int]] = {index: [] for index in range(len(names))}
    for src, dst in flow_edges:
        if src in ids and dst in ids:
            succs[ids[src]].append(ids[dst])
            flow_in[ids[dst]].append(ids[src])
    components = list(
        reversed(strongly_connected_components(list(range(len(names))), succs))
    )
    universe: Set[str] = set()
    for seed in facts.values():
        universe |= seed
    lattice = SetLattice(universe)
    values: Dict[int, FrozenSet[str]] = {}
    for component in components:
        members = sorted(component)
        member_set = set(members)
        boundary: Dict[int, FrozenSet[str]] = {}
        for node in members:
            incoming = frozenset()
            for src in flow_in[node]:
                if src not in member_set:
                    incoming |= values[src]
            boundary[node] = incoming
        intra = sorted(
            (src, dst)
            for src in members
            for dst in succs[src]
            if dst in member_set
        )
        key = _scc_key(
            analysis,
            [
                (
                    names[node],
                    sorted(facts.get(names[node], frozenset())),
                    sorted(boundary[node]),
                )
                for node in members
            ],
            [(names[src], names[dst]) for src, dst in intra],
        )
        cached = cache.get_scc(key) if cache is not None else None
        if cached is not None:
            for name, vals in cached.items():
                values[ids[name]] = frozenset(vals)
            if stats is not None:
                stats.sccs_reused += 1
            continue
        init_map = {
            node: facts.get(names[node], frozenset()) | boundary[node]
            for node in members
        }
        problem = DataflowProblem(
            lattice=lattice,
            may=True,
            init=lambda node, _m=init_map: _m[node],
            condense=False,  # already inside one SCC
        )
        result = solve(members, [(s, d, 0, 0) for s, d in intra], problem)
        solved_doc: Dict[str, List[str]] = {}
        for node in members:
            values[node] = result.values[node]
            solved_doc[names[node]] = sorted(result.values[node])
        if cache is not None:
            cache.put_scc(key, solved_doc)
        if stats is not None:
            stats.sccs_solved += 1
    return {name: values[ids[name]] for name in names}


def analyze_project(project: ProjectAnalysis, cache=None) -> ProjectAnalysis:
    """Run the four interprocedural analyses onto ``project`` in place."""
    names = sorted(project.functions)
    fns = project.functions
    caller_to_callee = [
        (caller, callee) for caller, callee, _lineno in project.call_edges
    ]
    # 1. Blocking reachability: facts flow callee -> caller, but only
    #    out of *sync* callees — awaiting a coroutine does not block.
    sync_callee_edges = [
        (callee, caller)
        for caller, callee in caller_to_callee
        if not fns[callee].is_async
    ]
    blocking_facts = {
        name: frozenset(reason for _lineno, reason in fn.blocking)
        for name, fn in fns.items()
    }
    project.blocking = _solve_union(
        names, sync_callee_edges, blocking_facts, "blocking",
        cache, project.stats,
    )
    # 2. Entry reachability: entry names flow caller -> callee.
    entry_facts = {
        name: frozenset((name,)) if name in project.entries else frozenset()
        for name in names
    }
    project.entry_reach = _solve_union(
        names, caller_to_callee, entry_facts, "entry_reach",
        cache, project.stats,
    )
    # 3. Unpicklable return closure: flows callee -> caller, but only
    #    along return-call edges (``return helper()``).
    return_edges: List[Tuple[str, str]] = []
    for name, fn in fns.items():
        mod = project.modules.get(fn.module)
        for ref in fn.return_calls:
            target = _resolve_ref(project, mod, ref, scope=name)
            if target is not None and target != name:
                return_edges.append((target, name))
    unpicklable_facts = {
        name: frozenset(fn.returns_unpicklable) for name, fn in fns.items()
    }
    project.unpicklable = _solve_union(
        names, return_edges, unpicklable_facts, "unpicklable",
        cache, project.stats,
    )
    # 4. Transitively held locks: flows callee -> caller.
    callee_edges = [(callee, caller) for caller, callee in caller_to_callee]
    lock_facts = {
        name: frozenset(fn.locks_used) for name, fn in fns.items()
    }
    project.locks_held = _solve_union(
        names, callee_edges, lock_facts, "locks_held",
        cache, project.stats,
    )
    return project


def build_project(
    sources: Sequence[SourceFile], cache=None
) -> ProjectAnalysis:
    """Extract (or reuse), link, and analyze a set of source files.

    ``cache`` is a :class:`repro.lint.anacache.AnalysisCache` (or None
    for a purely in-memory run).  Files whose content hash matches the
    cache reuse their stored :class:`ModuleSummary` without parsing;
    SCC fixed points are reused through the same cache.
    """
    stats = AnalysisStats()
    modules: List[ModuleSummary] = []
    files: Dict[str, SourceFile] = {}
    for source in sources:
        files[source.path] = source
        text_hash = hashlib.sha256(source.text.encode("utf-8")).hexdigest()
        summary = (
            cache.get_summary(source.path, text_hash)
            if cache is not None else None
        )
        if summary is not None:
            stats.files_cached += 1
        else:
            try:
                summary = extract_module(source)
            except SyntaxError:
                # A file the interpreter rejects is a per-file concern
                # (LINT001 via the SRC8xx pass); skip it here.
                continue
            stats.files_parsed += 1
            if cache is not None:
                cache.put_summary(source.path, text_hash, summary)
        modules.append(summary)
    project = link_project(modules, files, stats)
    analyze_project(project, cache)
    if cache is not None:
        cache.save()
    return project
