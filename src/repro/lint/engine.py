"""The lint engine: targets, rule execution, reports.

A :class:`LintTarget` bundles whatever pipeline artifacts exist for one
unit of work — a bare machine, a parsed loop, or a fully compiled
(annotated + scheduled) loop.  :func:`run_lint` executes every enabled
rule whose requirements the target satisfies and collects the
diagnostics into a :class:`LintReport`.

``lint_compiled`` and ``lint_loop_deep`` are the two convenience
builders used by the CLI and the ``--lint`` pipeline gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .. import obs
from ..ddg.graph import Ddg
from ..ddg.transform import AnnotatedDdg
from ..machine.machine import Machine
from ..scheduling.schedule import Schedule
from .diagnostics import (
    CODE_COMPILE_FAILURE,
    CODE_RULE_CRASH,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    compile_failure,
    rule_crash,
)
from .registry import DEFAULT_CONFIG, LintConfig, applicable_rules
from .source import SourceFile, collect_source_files


@dataclass
class LintTarget:
    """The artifacts available to the rules for one lint unit.

    ``cache`` memoizes expensive derived artifacts (rebuilt reservation
    tables, MVE allocations) across rules of one target; tests may
    pre-seed it to exercise consistency rules against corrupted
    artifacts.  ``source`` carries a Python file for the SRC8xx
    self-analysis family — source targets and pipeline targets are
    disjoint in practice, but nothing forbids mixing them.
    ``project`` carries a whole-program call-graph analysis
    (:class:`~repro.lint.callgraph.ProjectAnalysis`) for the CONC9xx
    interprocedural family; one project target covers every file.
    """

    name: str = ""
    ddg: Optional[Ddg] = None
    machine: Optional[Machine] = None
    annotated: Optional[AnnotatedDdg] = None
    schedule: Optional[Schedule] = None
    source: Optional[SourceFile] = None
    project: Optional[object] = None
    cache: Dict[str, object] = field(default_factory=dict)

    @property
    def graph(self) -> Optional[Ddg]:
        """The dependence graph the DDG rules inspect."""
        if self.ddg is not None:
            return self.ddg
        if self.annotated is not None:
            return self.annotated.ddg
        return None

    @property
    def effective_machine(self) -> Optional[Machine]:
        """The machine description, wherever it is attached."""
        if self.machine is not None:
            return self.machine
        if self.annotated is not None:
            return self.annotated.machine
        if self.schedule is not None:
            return self.schedule.annotated.machine
        return None

    @property
    def available(self) -> Set[str]:
        """Artifact names present on this target (rule requirements)."""
        names: Set[str] = set()
        if self.graph is not None:
            names.add("graph")
        if self.effective_machine is not None:
            names.add("machine")
        if self.annotated is not None:
            names.add("annotated")
        if self.schedule is not None:
            names.add("schedule")
        if self.source is not None:
            names.add("source")
        if self.project is not None:
            names.add("project")
        return names


@dataclass
class LintReport:
    """All diagnostics of one lint run, plus derived summaries."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    n_targets: int = 0
    rules_run: int = 0
    #: The ProjectAnalysis behind a CONC9xx run (cache-stats probes).
    project: Optional[object] = None

    def by_severity(self, severity: str) -> List[Diagnostic]:
        """Diagnostics of one severity level."""
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity diagnostics (the gating level)."""
        return self.by_severity(SEVERITY_ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity diagnostics."""
        return self.by_severity(SEVERITY_WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        """Info-severity diagnostics."""
        return self.by_severity(SEVERITY_INFO)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit code a lint CLI run should return."""
        return 0 if self.ok else 1

    def codes(self) -> List[str]:
        """Distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def extend(self, other: "LintReport") -> None:
        """Merge another report into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.n_targets += other.n_targets
        self.rules_run += other.rules_run

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.n_targets} target(s), {self.rules_run} rule "
            f"check(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )


def lint_target(
    target: LintTarget, config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Run every applicable enabled rule over one target."""
    report = LintReport(n_targets=1)
    rules = applicable_rules(config, frozenset(target.available))
    diagnostics = report.diagnostics
    with obs.span("lint", target=target.name):
        # The rule loop is the ``--lint`` gate's per-loop hot path:
        # _run_rule is inlined here so a finding-free rule (the common
        # case) costs one generator drain and nothing else.
        for rule in rules:
            try:
                findings = list(rule.check(target, config))
            except Exception as exc:  # containment: a rule bug must
                diagnostics.append(  # not kill the run
                    rule_crash(
                        rule.code, target.name, exc,
                        severity=config.severity.get(
                            CODE_RULE_CRASH, SEVERITY_ERROR
                        ),
                    )
                )
                continue
            if not findings:
                continue
            severity = config.severity_for(rule)
            for finding in findings:
                diagnostics.append(
                    Diagnostic(
                        code=rule.code,
                        severity=severity,
                        message=finding.message,
                        rule=rule.name,
                        loop=target.name,
                        artifact=rule.artifact,
                        location=finding.location,
                        hint=finding.hint or "",
                    )
                )
        report.rules_run = len(rules)
        obs.count("lint.rules_run", report.rules_run)
        obs.count("lint.diagnostics", len(diagnostics))
        obs.count("lint.errors", len(report.errors))
    return report


def run_lint(
    targets: Iterable[LintTarget],
    config: LintConfig = DEFAULT_CONFIG,
) -> LintReport:
    """Lint several targets into one merged report."""
    report = LintReport()
    for target in targets:
        report.extend(lint_target(target, config))
    return report


def lint_compiled(
    compiled, config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Lint one :class:`~repro.core.driver.CompiledLoop` end to end."""
    target = LintTarget(
        name=compiled.ddg.name or "loop",
        ddg=compiled.ddg,
        machine=compiled.machine,
        annotated=compiled.annotated,
        schedule=compiled.schedule,
    )
    return lint_target(target, config)


def lint_machine(
    machine: Machine, config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Lint a machine description alone (MACH2xx rules)."""
    target = LintTarget(name=machine.name or "machine", machine=machine)
    return lint_target(target, config)


def lint_source_file(
    source: SourceFile, config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Lint one Python source file (SRC8xx rules)."""
    return lint_target(
        LintTarget(name=source.name, source=source), config
    )


def lint_source_paths(
    paths: Iterable[str], config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Self-lint Python files and directories (SRC8xx rules).

    Directories expand recursively to ``*.py``; the report merges in
    sorted path order so output is deterministic.
    """
    report = LintReport()
    for source in collect_source_files(paths):
        report.extend(lint_source_file(source, config))
    return report


def lint_project(
    sources: Iterable[SourceFile],
    config: LintConfig = DEFAULT_CONFIG,
    cache_dir: Optional[str] = None,
) -> LintReport:
    """Interprocedural CONC9xx lint of a whole set of source files.

    Builds (or incrementally reuses, when ``cache_dir`` is given) the
    project call-graph analysis and runs the project-level rules over
    one target named ``project``.  Callers that also want the per-file
    SRC8xx pass run :func:`lint_source_paths` separately and merge.
    """
    from .anacache import AnalysisCache
    from .callgraph import build_project

    cache = AnalysisCache(cache_dir) if cache_dir else None
    with obs.span("lint.callgraph"):
        project = build_project(list(sources), cache=cache)
    report = lint_target(
        LintTarget(name="project", project=project), config
    )
    report.project = project
    return report


def lint_loop_deep(
    ddg: Ddg,
    machine: Machine,
    config: LintConfig = DEFAULT_CONFIG,
    variant=None,
) -> LintReport:
    """Lint one loop through the whole pipeline.

    Runs the DDG rules first; when they find errors the pipeline phases
    are skipped (the graph is not trustworthy enough to compile).
    Otherwise the loop is compiled for ``machine`` and the annotated
    graph, schedule, and register allocation are linted too.  A compile
    failure surfaces as a ``LINT002`` diagnostic rather than an
    exception so corpus-wide runs keep going.
    """
    report = lint_target(
        LintTarget(name=ddg.name or "loop", ddg=ddg, machine=machine),
        config,
    )
    if not report.ok:
        return report
    from ..core.driver import CompilationError, compile_loop
    from ..core.variants import HEURISTIC_ITERATIVE

    try:
        compiled = compile_loop(
            ddg, machine,
            config=variant if variant is not None else HEURISTIC_ITERATIVE,
        )
    except (CompilationError, ValueError) as exc:
        obs.count("lint.compile_failures")
        report.diagnostics.append(
            compile_failure(
                ddg.name or "loop", exc,
                severity=config.severity.get(
                    CODE_COMPILE_FAILURE, SEVERITY_ERROR
                ),
            )
        )
        return report
    # The shallow target already ran the pipeline-level differential
    # rule; keep the deep pass from compiling everything a third time.
    deep_config = replace(
        config, disable=config.disable | {"SCHED490"}
    )
    deep = lint_target(
        LintTarget(
            name=ddg.name or "loop",
            annotated=compiled.annotated,
            schedule=compiled.schedule,
        ),
        deep_config,
    )
    # The machine, DDG, and graph-level dataflow families already ran
    # on the shallow target; drop their duplicates from the deep pass
    # (the annotated graph re-exposes the same artifacts).
    deep.diagnostics = [
        d for d in deep.diagnostics
        if not d.code.startswith(("DDG1", "MACH2", "DF701", "DF702"))
    ]
    report.extend(deep)
    report.n_targets -= 1  # one loop, not two targets
    return report


def lint_corpus_deep(
    loops: Sequence[Ddg],
    machine: Machine,
    config: LintConfig = DEFAULT_CONFIG,
    variant=None,
) -> LintReport:
    """Deep-lint a corpus: the machine once, then every loop."""
    report = lint_machine(machine, config)
    for ddg in loops:
        report.extend(lint_loop_deep(ddg, machine, config, variant))
    return report
