"""Rule registry and per-run configuration.

A *rule* re-derives one pipeline invariant from scratch and reports
findings.  Rules are registered with the :func:`rule` decorator under a
stable code grouped by artifact family:

========== ======================================================
``DDG1xx``    graph well-formedness of the input DDG
``MACH2xx``   machine-description consistency
``ASSIGN3xx`` legality of the cluster-annotated graph
``SCHED4xx``  modulo-schedule constraints and modulo properties
``REG5xx``    lifetime / MVE register-allocation consistency
``CERT6xx``   compilation-certificate verification
``DF7xx``     fixed-point dataflow analyses over cyclic kernels
``SRC8xx``    self-analysis of the repro Python sources
``CONC9xx``   interprocedural concurrency analysis (call graph)
========== ======================================================

A rule's check function receives ``(target, config)`` and yields
:class:`Finding` records; the engine wraps them into
:class:`~repro.lint.diagnostics.Diagnostic` objects, applying the
configured severity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, NamedTuple

from .diagnostics import SEVERITIES

#: Rule families and what they inspect.
FAMILIES = {
    "DDG1": "DDG well-formedness",
    "MACH2": "machine description",
    "ASSIGN3": "annotated-graph legality",
    "SCHED4": "modulo-schedule constraints",
    "REG5": "register lifetime / MVE consistency",
    "CERT6": "certificate verification",
    "DF7": "cyclic-kernel dataflow analysis",
    "SRC8": "repro source self-analysis",
    "CONC9": "interprocedural concurrency analysis",
}

_CODE = re.compile(
    r"^(DDG1|MACH2|ASSIGN3|SCHED4|REG5|CERT6|DF7|SRC8|CONC9)\d\d$"
)


class Finding(NamedTuple):
    """One raw finding of one rule (pre-severity, pre-code)."""

    location: str
    message: str
    hint: str = ""


CheckFn = Callable[..., Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    code: str
    name: str
    default_severity: str
    description: str
    #: Artifact names the target must provide: any of ``graph``,
    #: ``machine``, ``annotated``, ``schedule``, ``source``.
    requires: FrozenSet[str]
    check: CheckFn
    #: Artifact family reported in diagnostics (``ddg``/``machine``/...).
    artifact: str
    #: Default-off rules (e.g. the expensive differential cross-check)
    #: run only when explicitly enabled.
    default_enabled: bool = True

    @property
    def family(self) -> str:
        """The family prefix of this rule's code (e.g. ``SCHED4``)."""
        match = _CODE.match(self.code)
        return match.group(1) if match else self.code


#: The global registry: code -> rule, populated by module import.
RULES: Dict[str, Rule] = {}

#: Memoized sorted view of ``RULES`` (rebuilt on registration).
_SORTED_RULES: "List[Rule]" = []

#: Memoized (disable, enable, available) -> applicable rule tuple.
_APPLICABLE: Dict[tuple, tuple] = {}


def invalidate_rule_caches() -> None:
    """Drop the memoized rule views (call after mutating ``RULES``)."""
    _SORTED_RULES.clear()
    _APPLICABLE.clear()


def rule(
    code: str,
    name: str,
    severity: str,
    description: str,
    requires: Iterable[str],
    artifact: str,
    default_enabled: bool = True,
) -> Callable[[CheckFn], CheckFn]:
    """Register a check function under a stable diagnostic code."""
    if not _CODE.match(code):
        raise ValueError(f"malformed rule code {code!r}")
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r} for {code}")

    def decorate(check: CheckFn) -> CheckFn:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        invalidate_rule_caches()
        RULES[code] = Rule(
            code=code,
            name=name,
            default_severity=severity,
            description=description,
            requires=frozenset(requires),
            check=check,
            artifact=artifact,
            default_enabled=default_enabled,
        )
        return check

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code.

    The sorted view is memoized (linting runs per compiled loop, so
    this is on the ``--lint`` gate's hot path); registering a new rule
    invalidates it.
    """
    if not _SORTED_RULES:
        _load_rule_modules()
        _SORTED_RULES.extend(RULES[code] for code in sorted(RULES))
    return _SORTED_RULES


def applicable_rules(
    config: "LintConfig", available: FrozenSet[str]
) -> tuple:
    """Enabled rules whose requirements ``available`` satisfies.

    Rule selection depends only on the config's select/enable/disable
    sets and the target's artifact availability, so the filtered tuple
    is memoized across targets — the ``--lint`` gate lints one target
    per compiled loop and would otherwise re-filter 40+ rules each
    time.
    """
    key = (config.disable, config.enable, config.select, available)
    cached = _APPLICABLE.get(key)
    if cached is None:
        cached = tuple(
            r for r in all_rules()
            if config.is_enabled(r) and r.requires <= available
        )
        _APPLICABLE[key] = cached
    return cached


def rules_in_family(prefix: str) -> List[Rule]:
    """Rules whose code starts with ``prefix`` (e.g. ``SCHED4``)."""
    return [r for r in all_rules() if r.code.startswith(prefix)]


def _load_rule_modules() -> None:
    """Import every rules module so the registry is fully populated."""
    from . import (  # noqa: F401  (imported for registration side effect)
        rules_assign,
        rules_cert,
        rules_conc,
        rules_ddg,
        rules_df,
        rules_machine,
        rules_reg,
        rules_sched,
        rules_src,
    )


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection and severity policy.

    ``disable`` wins over everything; ``enable`` opts default-off rules
    in.  ``select``, when non-empty, restricts the run to rules whose
    code matches one of its entries — exactly (``DF705``) or by family
    prefix (``DF7``, ``SRC8``); a selected rule runs even when it is
    default-off (selection implies enablement, disable still wins).
    ``severity`` maps rule codes to overridden severities.  The config
    is immutable and picklable so it can ride into experiment worker
    processes unchanged.
    """

    disable: FrozenSet[str] = frozenset()
    enable: FrozenSet[str] = frozenset()
    select: FrozenSet[str] = frozenset()
    severity: "Dict[str, str]" = field(default_factory=dict)
    #: Strict gates treat lint errors as compilation failures.
    strict: bool = False
    #: The differential rule checks one loop in ``sample`` (>= 1).
    differential_sample: int = 1

    def __post_init__(self) -> None:
        for code, severity in self.severity.items():
            if severity not in SEVERITIES:
                raise ValueError(
                    f"unknown severity {severity!r} for {code}"
                )
        if self.differential_sample < 1:
            raise ValueError("differential_sample must be >= 1")

    def is_enabled(self, rule: Rule) -> bool:
        """Whether ``rule`` runs under this configuration."""
        if rule.code in self.disable:
            return False
        if self.select:
            return any(
                rule.code.startswith(prefix) for prefix in self.select
            )
        if not rule.default_enabled:
            return rule.code in self.enable
        return True

    def severity_for(self, rule: Rule) -> str:
        """Effective severity of ``rule`` under this configuration."""
        return self.severity.get(rule.code, rule.default_severity)


#: The everything-on-defaults configuration used by gates and tests.
DEFAULT_CONFIG = LintConfig()
