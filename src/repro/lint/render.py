"""Render a :class:`~repro.lint.engine.LintReport` for humans and tools.

Three formats: plain text (terminal), a stable JSON document, and
SARIF 2.1.0 — the interchange format code-scanning UIs (GitHub, VS
Code) ingest.  Diagnostics here have *logical* locations (a loop, a
node, a kernel row), not file/line positions, so the SARIF results use
``logicalLocations`` and put the human-readable position in the
message.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .diagnostics import SARIF_LEVELS
from .engine import LintReport
from .registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro"


def format_text(report: LintReport, verbose: bool = False) -> str:
    """Plain-text rendering: one line per diagnostic plus a summary."""
    lines: List[str] = [str(d) for d in report.diagnostics]
    if verbose or not lines:
        lines.append(report.summary())
    else:
        lines.append("")
        lines.append(report.summary())
    return "\n".join(lines)


def to_json_doc(report: LintReport) -> Dict:
    """The stable JSON document shape (``format_json`` serialises it)."""
    return {
        "tool": TOOL_NAME,
        "summary": {
            "targets": report.n_targets,
            "rules_run": report.rules_run,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "infos": len(report.infos),
            "ok": report.ok,
        },
        "diagnostics": [d.as_dict() for d in report.diagnostics],
    }


def format_json(report: LintReport) -> str:
    """Serialise the JSON document, stable key order."""
    return json.dumps(to_json_doc(report), indent=2, sort_keys=True)


def _sarif_rules() -> List[Dict]:
    """``tool.driver.rules`` entries for every registered rule."""
    return [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": SARIF_LEVELS[rule.default_severity],
            },
            "properties": {
                "family": rule.family,
                "artifact": rule.artifact,
            },
        }
        for rule in all_rules()
    ]


def to_sarif(report: LintReport) -> Dict:
    """A SARIF 2.1.0 log document for this report."""
    rules = _sarif_rules()
    index_of = {entry["id"]: i for i, entry in enumerate(rules)}
    results: List[Dict] = []
    for diag in report.diagnostics:
        message = diag.message
        if diag.hint:
            message = f"{message} (hint: {diag.hint})"
        result: Dict = {
            "ruleId": diag.code,
            "level": SARIF_LEVELS[diag.severity],
            "message": {"text": message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "name": diag.location or diag.loop or "-",
                            "fullyQualifiedName": "::".join(
                                part
                                for part in (diag.loop, diag.location)
                                if part
                            ) or "-",
                            "kind": diag.artifact or "artifact",
                        }
                    ]
                }
            ],
        }
        if diag.code in index_of:
            result["ruleIndex"] = index_of[diag.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(report: LintReport) -> str:
    """Serialise the SARIF document."""
    return json.dumps(to_sarif(report), indent=2)


def render(report: LintReport, fmt: str) -> str:
    """Render ``report`` in ``fmt`` (``text``/``json``/``sarif``)."""
    if fmt == "text":
        return format_text(report)
    if fmt == "json":
        return format_json(report)
    if fmt == "sarif":
        return format_sarif(report)
    raise ValueError(f"unknown lint output format {fmt!r}")
