"""SRC8xx — self-analysis of the repro codebase.

AST rules over :class:`~repro.lint.source.SourceFile` targets.  Each
rule guards an invariant the PR 7 service layer depends on:

* ``SRC801`` — module-level mutable state rebound inside a function is
  a fork-server hazard: a worker's mutation is invisible to the parent
  and to sibling workers, and under ``fork`` the parent's value is
  frozen into every child.  Rebinding under a lock (``with ...lock:``)
  is the sanctioned parent-side pattern; anything else needs a
  ``# lint: allow SRC801`` pragma and a story.
* ``SRC802`` — task payloads must pickle: lambdas, generator
  expressions, and open file handles die at the worker boundary.
* ``SRC803`` — scripts need a ``__main__`` guard or every ``spawn``
  worker re-executes them on import.
* ``SRC804`` — blocking calls inside ``async def`` stall the front
  door's event loop for every queued client.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Set, Tuple

from .registry import Finding, rule

#: Pool entry points whose payload arguments must pickle.
_PAYLOAD_CALLS = frozenset({"submit", "map_tasks", "run_task"})

#: ``subprocess`` functions that block until the child exits.
_SUBPROCESS_BLOCKING = frozenset(
    {"run", "call", "check_call", "check_output"}
)


def _call_name(func: ast.AST) -> str:
    """The trailing identifier of a call target (``a.b.c()`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _mentions_lock(expr: ast.AST) -> bool:
    """True when a ``with`` context expression looks like a lock."""
    for node in ast.walk(expr):
        name = ""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if "lock" in name.lower():
            return True
    return False


def _functions(tree: ast.AST) -> List[ast.AST]:
    """Every function definition in the module, nested ones included."""
    return [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _def_suppressed(source, function, code: str) -> bool:
    """A pragma covering the whole ``def`` — at the definition line or
    above its *first decorator*, which is where reviewers actually put
    it on decorated functions."""
    pragma_lineno = min(
        [d.lineno for d in function.decorator_list] + [function.lineno]
    )
    return source.suppressed(pragma_lineno, code)


@rule(
    "SRC801",
    "fork-unsafe-global",
    "error",
    "module-level state rebound outside a lock (fork-server hazard)",
    requires=("source",),
    artifact="source",
)
def check_fork_unsafe_globals(target, config) -> Iterator[Finding]:
    source = target.source
    for function in _functions(source.tree):
        if _def_suppressed(source, function, "SRC801"):
            continue
        declared: Set[str] = set()
        for statement in ast.walk(function):
            if isinstance(statement, ast.Global):
                declared.update(statement.names)
        if not declared:
            continue
        yield from _unguarded_rebinds(
            source, function, function.name, declared, in_lock=False
        )


def _unguarded_rebinds(
    source, node, function_name: str, declared: Set[str], in_lock: bool
) -> Iterator[Finding]:
    """Walk a function body tracking ``with <lock>`` nesting."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested functions are visited independently
        child_in_lock = in_lock
        if isinstance(child, (ast.With, ast.AsyncWith)):
            if any(
                _mentions_lock(item.context_expr) for item in child.items
            ):
                child_in_lock = True
        rebound: List[str] = []
        if isinstance(child, ast.Assign):
            targets = child.targets
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        else:
            targets = []
        for assign_target in targets:
            for leaf in ast.walk(assign_target):
                if isinstance(leaf, ast.Name) and leaf.id in declared:
                    rebound.append(leaf.id)
        if rebound and not child_in_lock:
            if not source.suppressed(child.lineno, "SRC801"):
                yield Finding(
                    location=f"line {child.lineno}",
                    message=(
                        f"function {function_name!r} rebinds module "
                        f"global(s) {', '.join(sorted(set(rebound)))} "
                        f"outside a lock"
                    ),
                    hint="guard the rebind with the owning lock or add "
                         "'# lint: allow SRC801' with a justification",
                )
        yield from _unguarded_rebinds(
            source, child, function_name, declared, child_in_lock
        )


@rule(
    "SRC802",
    "unpicklable-payload",
    "error",
    "pool task payload that cannot cross the pickle boundary",
    requires=("source",),
    artifact="source",
)
def check_unpicklable_payloads(target, config) -> Iterator[Finding]:
    source = target.source
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node.func) not in _PAYLOAD_CALLS:
            continue
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            for leaf in ast.walk(argument):
                culprit = ""
                if isinstance(leaf, ast.Lambda):
                    culprit = "a lambda"
                elif isinstance(leaf, ast.GeneratorExp):
                    culprit = "a generator expression"
                elif (
                    isinstance(leaf, ast.Call)
                    and _call_name(leaf.func) == "open"
                ):
                    culprit = "an open file handle"
                if not culprit:
                    continue
                if source.suppressed(node.lineno, "SRC802"):
                    continue
                yield Finding(
                    location=f"line {node.lineno}",
                    message=(
                        f"{_call_name(node.func)}() payload contains "
                        f"{culprit}, which cannot pickle into a worker"
                    ),
                    hint="pass a registered task name plus plain data "
                         "(lists, not generators) instead",
                )


def _is_main_guard(statement: ast.stmt) -> bool:
    """``if __name__ == "__main__":`` (either operand order)."""
    if not isinstance(statement, ast.If):
        return False
    test = statement.test
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left] + list(test.comparators)
    has_name = any(
        isinstance(op, ast.Name) and op.id == "__name__"
        for op in operands
    )
    has_literal = any(
        isinstance(op, ast.Constant) and op.value == "__main__"
        for op in operands
    )
    return has_name and has_literal


def _script_entry(statement: ast.stmt) -> str:
    """Why a top-level statement makes the module a script ('' if not)."""
    if isinstance(statement, ast.Raise) and statement.exc is not None:
        exc = statement.exc
        name = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(name, ast.Name) and name.id == "SystemExit":
            return "raises SystemExit"
    for node in ast.walk(statement):
        if not isinstance(node, ast.Call):
            continue
        call = _call_name(node.func)
        if isinstance(node.func, ast.Name) and call == "main":
            return "calls main()"
        if call == "exit" and isinstance(node.func, ast.Attribute):
            return "calls sys.exit()"
        if call == "parse_args":
            return "parses command-line arguments"
    return ""


@rule(
    "SRC803",
    "missing-main-guard",
    "error",
    "script-level code outside an `if __name__ == '__main__'` guard",
    requires=("source",),
    artifact="source",
)
def check_missing_main_guard(target, config) -> Iterator[Finding]:
    source = target.source
    if os.path.basename(source.path) == "__main__.py":
        return  # only ever executed as the entry module
    for statement in source.tree.body:
        if _is_main_guard(statement):
            continue
        if isinstance(
            statement,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
             ast.Import, ast.ImportFrom),
        ):
            continue
        reason = _script_entry(statement)
        if not reason:
            continue
        if source.suppressed(statement.lineno, "SRC803"):
            continue
        yield Finding(
            location=f"line {statement.lineno}",
            message=(
                f"top-level statement {reason} outside a __main__ "
                f"guard; spawn workers re-execute it on import"
            ),
            hint="wrap it in `if __name__ == \"__main__\":`",
        )


def _time_sleep_alias(tree: ast.AST) -> bool:
    """True when the module does ``from time import sleep``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "sleep" for alias in node.names):
                return True
    return False


def _blocking_reason(node: ast.Call, bare_sleep: bool) -> str:
    """Why a call blocks the event loop ('' when it does not)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        value = func.value
        owner = value.id if isinstance(value, ast.Name) else ""
        if owner == "time" and func.attr == "sleep":
            return "time.sleep() blocks the event loop"
        if owner == "os" and func.attr == "system":
            return "os.system() blocks the event loop"
        if owner == "subprocess" and func.attr in _SUBPROCESS_BLOCKING:
            return f"subprocess.{func.attr}() blocks the event loop"
        if func.attr == "result":
            return (
                ".result() is a synchronous pool/future wait; "
                "await asyncio.wrap_future(...) instead"
            )
    elif isinstance(func, ast.Name):
        if bare_sleep and func.id == "sleep":
            return "time.sleep() blocks the event loop"
    return ""


def _async_calls(
    function: ast.AsyncFunctionDef,
) -> Iterator[Tuple[ast.Call, ast.AST]]:
    """Calls lexically inside the coroutine (nested sync defs excluded)."""
    stack: List[ast.AST] = [function]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Call):
                yield child, node
            stack.append(child)


@rule(
    "SRC804",
    "blocking-in-async",
    "error",
    "synchronous blocking call inside an async def coroutine",
    requires=("source",),
    artifact="source",
)
def check_blocking_in_async(target, config) -> Iterator[Finding]:
    source = target.source
    bare_sleep = _time_sleep_alias(source.tree)
    for function in _functions(source.tree):
        if not isinstance(function, ast.AsyncFunctionDef):
            continue
        if _def_suppressed(source, function, "SRC804"):
            continue
        for call, _parent in _async_calls(function):
            reason = _blocking_reason(call, bare_sleep)
            if not reason:
                continue
            if source.suppressed(call.lineno, "SRC804"):
                continue
            yield Finding(
                location=f"line {call.lineno}",
                message=(
                    f"coroutine {function.name!r}: {reason}"
                ),
                hint="use the asyncio equivalent or push the work "
                     "into the pool",
            )
