"""DF7xx — dataflow-analysis rules over cyclic kernels.

These rules run the fixed-point analyses of :mod:`repro.lint.dataflow`
against whatever artifacts the target carries: cyclic liveness on the
bare graph, copy reachability before and after cluster assignment, and
the static register-pressure / MII lower bounds against the finished
schedule.  Everything is a *proof*, not an observation — when DF704 or
DF705 fires, no schedule (at that II, or at all) could have avoided it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List

from .dataflow import (
    BoolLattice,
    DataflowProblem,
    cached_live_values,
    cluster_reachability,
    df_mii_floor,
    pressure_floor,
    solve,
)
from .registry import Finding, rule


def _node_label(ddg, node_id: int) -> str:
    node = ddg.node(node_id)
    return node.name or f"n{node_id}"


def _live_map(target) -> Dict[int, bool]:
    # target.cache first (tests pre-seed it), then the per-graph memo:
    # liveness is machine-independent, so multi-machine sweeps share it.
    cached = target.cache.get("df_live")
    if cached is None:
        cached = cached_live_values(target.graph)
        target.cache["df_live"] = cached
    return cached


@rule(
    "DF701",
    "dead-value",
    "info",
    "value-producing operation whose result never reaches any effect",
    requires=("graph",),
    artifact="ddg",
)
def check_dead_values(target, config) -> Iterator[Finding]:
    """Backward cyclic liveness: flag transitively dead value chains.

    A value kept alive only by its own recurrence (an accumulator
    nobody stores) is dead too — the analysis follows value edges
    backward from effects, across cross-iteration wraparound, and
    anything unreached is removable without changing the loop.
    """
    ddg = target.graph
    live = _live_map(target)
    for node_id in ddg.view().node_ids:
        if live[node_id]:
            continue
        node = ddg.node(node_id)
        kind = "copy" if node.is_copy else "operation"
        yield Finding(
            location=f"node {node_id}",
            message=(
                f"{kind} {_node_label(ddg, node_id)!r} produces a value "
                f"no store/branch ever (transitively) consumes"
            ),
            hint="dead code: deleting it cannot change the loop's effects",
        )


@rule(
    "DF702",
    "unreachable-consumer",
    "error",
    "value flow no cluster assignment can route on this machine",
    requires=("graph", "machine"),
    artifact="ddg",
)
def check_unreachable_consumers(target, config) -> Iterator[Finding]:
    """Pre-assignment copy-routing feasibility.

    For every value edge, *some* placement of producer and consumer
    must exist whose clusters coincide or are connected by the
    interconnect's transitive closure.  When the FU classes pin the two
    ops to mutually unreachable clusters, assignment is doomed before
    it starts — report it here instead of as a routing failure.
    """
    ddg = target.graph
    machine = target.effective_machine
    if machine.is_unified:
        return
    senders = cluster_reachability(machine)
    everyone = frozenset(machine.cluster_indices)
    if all(senders[c] == everyone for c in machine.cluster_indices):
        return  # fully connected fabric: nothing can be unroutable
    view = ddg.view()
    class_clusters: Dict[object, List[int]] = {}
    feasible: Dict[int, List[int]] = {}
    for node_id in view.node_ids:
        node = ddg.node(node_id)
        if node.is_copy:
            continue
        clusters = class_clusters.get(node.fu_class)
        if clusters is None:
            clusters = class_clusters[node.fu_class] = [
                c for c in machine.cluster_indices
                if machine.cluster(c).issue_capacity(node.fu_class) > 0
            ]
        feasible[node_id] = clusters
    for src, dst, _lat, _dist in view.edge_array:
        if src == dst or not view.produces_value[src]:
            continue
        if src not in feasible or dst not in feasible:
            continue  # copies: routed already, DF703's job
        src_clusters = feasible[src]
        if any(
            cu in senders[cv]
            for cv in feasible[dst]
            for cu in src_clusters
        ):
            continue
        yield Finding(
            location=f"edge {src}->{dst}",
            message=(
                f"value of {_node_label(ddg, src)!r} can never reach "
                f"consumer {_node_label(ddg, dst)!r}: every feasible "
                f"cluster pair is disconnected on {machine.name or 'machine'}"
            ),
            hint="add interconnect links or units so producer and "
                 "consumer share a reachable cluster pair",
        )


@rule(
    "DF703",
    "copy-reach",
    "error",
    "copy chain fails to deliver a value to its consumers",
    requires=("annotated",),
    artifact="annotated",
)
def check_copy_reach(target, config) -> Iterator[Finding]:
    """Reaching-copies analysis of the cluster-annotated graph.

    Re-derives, independently of ``AnnotatedDdg.validate``, that every
    copy is fed by a value path from the value it claims to transport,
    that its hops exist on the interconnect, that its value is consumed
    somewhere, and that every consumer reads the value in a cluster
    some carrier actually delivers to.
    """
    annotated = target.annotated
    ddg = annotated.ddg
    machine = annotated.machine
    view = ddg.view()
    cluster_of = annotated.cluster_of
    copy_targets = annotated.copy_targets
    copy_value_of = annotated.copy_value_of

    for copy_id in annotated.copy_nodes:
        if not view.out_edges[copy_id]:
            yield Finding(
                location=f"node {copy_id}",
                message=(
                    f"copy {_node_label(ddg, copy_id)!r} is never "
                    f"consumed on any of its target clusters"
                ),
                hint="the assignment inserted a useless copy",
            )
        src_cluster = cluster_of[copy_id]
        for target_cluster in copy_targets.get(copy_id, ()):
            if not machine.interconnect.reachable(
                src_cluster, target_cluster
            ):
                yield Finding(
                    location=f"node {copy_id}",
                    message=(
                        f"copy {_node_label(ddg, copy_id)!r} hops "
                        f"cluster {src_cluster} -> {target_cluster}, "
                        f"which the interconnect cannot carry"
                    ),
                    hint="copies must ride one-hop reachable channels",
                )

    carriers_of: Dict[int, List[int]] = {}
    for copy_id, value_id in copy_value_of.items():
        carriers_of.setdefault(value_id, []).append(copy_id)
    for value_id, copies in sorted(carriers_of.items()):
        carriers = frozenset([value_id, *copies])
        # Fast path: when the value's own out-edges feed every copy
        # directly (the common one-hop broadcast shape), each copy is
        # trivially fed and the fixed point is not worth setting up.
        direct = {dst for dst, _distance in view.out_specs[value_id]}
        if all(copy_id in direct for copy_id in copies):
            fed = dict.fromkeys(carriers, True)
        else:
            # Flow edges among carriers only; the Bool transfer is
            # identity, so synthesizing specs from the CSR out-lists
            # avoids scanning the whole edge array per value.
            chain_edges = [
                (carrier, dst, 0, 0)
                for carrier in carriers
                for dst, _distance in view.out_specs[carrier]
                if dst in carriers and dst != carrier
            ]
            fed = solve(
                sorted(carriers),
                chain_edges,
                DataflowProblem(
                    lattice=BoolLattice,
                    init=lambda node, root=value_id: node == root,
                ),
            ).values
        for copy_id in copies:
            if not fed[copy_id]:
                yield Finding(
                    location=f"node {copy_id}",
                    message=(
                        f"copy {_node_label(ddg, copy_id)!r} claims to "
                        f"carry {_node_label(ddg, value_id)!r} but no "
                        f"value path feeds it"
                    ),
                    hint="the copy chain is disconnected from its value",
                )
        for carrier in sorted(carriers):
            delivered: FrozenSet[int] = (
                frozenset(copy_targets.get(carrier, ()))
                if ddg.node(carrier).is_copy
                else frozenset((cluster_of[carrier],))
            )
            for dst, _distance in view.out_specs[carrier]:
                if dst in carriers or dst == carrier:
                    continue
                if cluster_of[dst] in delivered:
                    continue
                yield Finding(
                    location=f"edge {carrier}->{dst}",
                    message=(
                        f"consumer {_node_label(ddg, dst)!r} reads "
                        f"{_node_label(ddg, value_id)!r} on cluster "
                        f"{cluster_of[dst]}, which no carrier delivers to"
                    ),
                    hint="insert a copy into the consumer's cluster",
                )


@rule(
    "DF704",
    "register-pressure",
    "error",
    "static register-pressure floor exceeds a finite register file",
    requires=("schedule",),
    artifact="regalloc",
)
def check_register_pressure(target, config) -> Iterator[Finding]:
    """Per-cluster register-pressure lower bound vs. the machine.

    The bound holds for *every* schedule at this II (longest-path
    minimum lifetimes), so a violation is an infeasibility proof, not
    an allocator critique.  Clusters with ``register_file == 0``
    (unbounded, the paper's model) are exempt.
    """
    schedule = target.schedule
    machine = target.effective_machine
    if all(c.register_file == 0 for c in machine.clusters):
        return
    floors = pressure_floor(schedule.annotated, schedule.ii)
    if floors is None:
        return  # an infeasible II is SCHED4xx territory
    for cluster_index, floor in sorted(floors.items()):
        capacity = machine.cluster(cluster_index).register_file
        if capacity and floor > capacity:
            yield Finding(
                location=f"cluster {cluster_index}",
                message=(
                    f"needs at least {floor} registers at II="
                    f"{schedule.ii}, but the file holds {capacity}"
                ),
                hint="no schedule at this II fits; raise the II or "
                     "grow the register file",
            )


@rule(
    "DF705",
    "ii-below-floor",
    "error",
    "achieved II is below the static dataflow MII floor",
    requires=("schedule",),
    artifact="schedule",
    default_enabled=False,
)
def check_ii_floor(target, config) -> Iterator[Finding]:
    """Cross-check the schedule's II against :func:`df_mii_floor`.

    The floor is a sound lower bound on any feasible II for the
    annotated graph, so a schedule beneath it means either the
    scheduler violated a constraint or the floor's proof is wrong —
    both are bugs worth an error.  Like ``SCHED490`` and the CERT6xx
    family, the rule re-derives MII from scratch per loop, so it is
    opt-in (``--enable DF705`` or ``--rule DF7``) rather than part of
    the default ``--lint`` gate's budget.
    """
    schedule = target.schedule
    machine = target.effective_machine
    floor = target.cache.get("df_mii_floor")
    if floor is None:
        floor = df_mii_floor(schedule.annotated.ddg, machine)
        target.cache["df_mii_floor"] = floor
    if schedule.ii < floor:
        yield Finding(
            location=f"ii {schedule.ii}",
            message=(
                f"schedule II {schedule.ii} is below the dataflow MII "
                f"floor {floor}"
            ),
            hint="the floor is a proven lower bound; one of the two "
                 "computations is wrong",
        )
