"""One-call regeneration of the paper's entire evaluation.

``run_campaign`` executes every table and figure of the paper over one
suite and collects the results; ``campaign_to_markdown`` renders them as
a report in the same structure as EXPERIMENTS.md.  The pytest-benchmark
harness under ``benchmarks/`` wraps the same experiments individually;
this module is the library-level entry point (also exposed as
``python -m repro campaign``).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.variants import ALL_VARIANTS, HEURISTIC_ITERATIVE
from ..ddg.graph import Ddg
from ..machine.presets import (
    TABLE3_CONFIGS,
    four_cluster_fs,
    four_cluster_gp,
    four_cluster_grid,
    n_cluster_gp,
    two_cluster_fs,
    two_cluster_gp,
)
from ..workloads.stats import SuiteStatistics, suite_statistics
from ..workloads.suite import paper_suite
from .engine import EngineOptions, run_engine_experiment
from .experiment import ExperimentResult, UnifiedBaseline, run_experiment
from .reporting import cumulative_table, deviation_table, table3_rows


@dataclass
class Campaign:
    """All experiment results of one full evaluation run."""

    n_loops: int
    table1: SuiteStatistics
    fig12: List[ExperimentResult] = field(default_factory=list)
    fig13: List[ExperimentResult] = field(default_factory=list)
    fig14: List[ExperimentResult] = field(default_factory=list)
    fig15: List[ExperimentResult] = field(default_factory=list)
    fig16: List[ExperimentResult] = field(default_factory=list)
    fig17: List[ExperimentResult] = field(default_factory=list)
    fig18: List[ExperimentResult] = field(default_factory=list)
    fig19: List[ExperimentResult] = field(default_factory=list)
    table3: List[Tuple[int, int, int, float]] = field(default_factory=list)
    grid: Optional[ExperimentResult] = None

    def sections(self) -> List[Tuple[str, List[ExperimentResult]]]:
        """(title, results) for every figure, in paper order."""
        return [
            ("Figure 12 — heuristics, 2 clusters GP", self.fig12),
            ("Figure 13 — heuristics, 4 clusters GP", self.fig13),
            ("Figure 14 — buses, 2 clusters GP", self.fig14),
            ("Figure 15 — ports, 2 clusters GP", self.fig15),
            ("Figure 16 — buses, 4 clusters GP", self.fig16),
            ("Figure 17 — ports, 4 clusters GP", self.fig17),
            ("Figure 18 — buses, 2 clusters FS", self.fig18),
            ("Figure 19 — buses, 4 clusters FS", self.fig19),
        ]


def run_campaign(
    n_loops: int = 250,
    loops: Optional[Sequence[Ddg]] = None,
    include_table3: bool = True,
    progress=None,
    engine_options: Optional[EngineOptions] = None,
) -> Campaign:
    """Run every paper experiment over one suite.

    ``progress`` may be a callable receiving one status string per
    experiment (e.g. ``print``).  Passing ``engine_options`` routes
    every experiment through the parallel fault-tolerant engine
    (workers / per-loop budget / result cache); the unified-baseline
    cache is still shared across the whole campaign either way.
    """
    suite = list(loops) if loops is not None else paper_suite(n_loops)
    baseline = UnifiedBaseline()

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    def measure(machine, config, label):
        if engine_options is not None:
            return run_engine_experiment(
                suite, machine, config,
                label=label, baseline=baseline,
                options=engine_options,
            )
        return run_experiment(
            suite, machine, config, label=label, baseline=baseline,
        )

    def experiments(machines, labels, configs=None):
        results = []
        for index, machine in enumerate(machines):
            config = (configs[index] if configs is not None
                      else HEURISTIC_ITERATIVE)
            note(f"running {labels[index]} ...")
            results.append(measure(machine, config, labels[index]))
        return results

    campaign = Campaign(
        n_loops=len(suite), table1=suite_statistics(suite)
    )

    campaign.fig12 = experiments(
        [two_cluster_gp()] * 4,
        [config.name for config in ALL_VARIANTS],
        configs=list(ALL_VARIANTS),
    )
    campaign.fig13 = experiments(
        [four_cluster_gp()] * 4,
        [config.name for config in ALL_VARIANTS],
        configs=list(ALL_VARIANTS),
    )
    campaign.fig14 = experiments(
        [two_cluster_gp(buses=b) for b in (1, 2, 4)],
        [f"{b} bus(es)" for b in (1, 2, 4)],
    )
    campaign.fig15 = experiments(
        [two_cluster_gp(ports=p) for p in (1, 2)],
        [f"{p} port(s)" for p in (1, 2)],
    )
    campaign.fig16 = experiments(
        [four_cluster_gp(buses=b) for b in (2, 4, 8)],
        [f"{b} buses" for b in (2, 4, 8)],
    )
    campaign.fig17 = experiments(
        [four_cluster_gp(ports=p) for p in (1, 2, 4)],
        [f"{p} port(s)" for p in (1, 2, 4)],
    )
    campaign.fig18 = experiments(
        [two_cluster_fs(buses=b) for b in (1, 2, 4)],
        [f"{b} bus(es)" for b in (1, 2, 4)],
    )
    campaign.fig19 = experiments(
        [four_cluster_fs(buses=b) for b in (2, 4, 8)],
        [f"{b} buses" for b in (2, 4, 8)],
    )

    if include_table3:
        for clusters, buses, ports in TABLE3_CONFIGS:
            note(f"running Table 3: {clusters} clusters ...")
            result = measure(
                n_cluster_gp(clusters, buses, ports),
                HEURISTIC_ITERATIVE, f"{clusters}cl",
            )
            campaign.table3.append(
                (clusters, buses, ports, result.match_percentage)
            )

    note("running grid ...")
    campaign.grid = measure(
        four_cluster_grid(), HEURISTIC_ITERATIVE, "4-cluster grid"
    )
    return campaign


def campaign_to_markdown(campaign: Campaign) -> str:
    """Render a campaign as a markdown report."""
    out = io.StringIO()
    out.write("# Evaluation campaign\n\n")
    out.write(f"Suite: {campaign.n_loops} loops.\n\n")
    out.write("## Table 1 — loop statistics\n\n```\n")
    out.write(campaign.table1.format_table())
    out.write("\n```\n\n")
    for title, results in campaign.sections():
        if not results:
            continue
        out.write(f"## {title}\n\n```\n")
        out.write(deviation_table(results))
        out.write("\n\n")
        out.write(cumulative_table(results))
        out.write("\n```\n\n")
    if campaign.table3:
        out.write("## Table 3 — cluster scaling\n\n```\n")
        out.write(table3_rows(campaign.table3))
        out.write("\n```\n\n")
    if campaign.grid is not None:
        out.write("## Grid (Section 6)\n\n```\n")
        out.write(deviation_table([campaign.grid]))
        out.write("\n\n")
        out.write(cumulative_table([campaign.grid]))
        out.write("\n```\n")
    return out.getvalue()
