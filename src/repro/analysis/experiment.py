"""Experiment runner: one machine/algorithm configuration over a suite.

The paper's measurement protocol (Section 6): schedule every loop for the
clustered machine and for the equally wide unified machine, and report the
distribution of the II difference.  ``UnifiedBaseline`` caches the unified
IIs so sweeps that share a width (e.g. the bus-count sweeps of Figures
14–17) pay for the baseline only once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..core.driver import CompilationError, compile_loop
from ..core.variants import HEURISTIC_ITERATIVE, AssignmentConfig
from ..ddg.graph import Ddg
from ..machine.machine import Machine
from .histogram import DeviationHistogram


class ExperimentError(CompilationError):
    """One loop failed to compile during an experiment run.

    Subclasses :class:`CompilationError` so existing handlers keep
    working; carries the partially filled :class:`ExperimentResult`
    (outcomes so far, ``elapsed_seconds`` set) and the failing loop's
    name for post-mortem analysis.
    """

    def __init__(self, message: str, partial_result: "ExperimentResult",
                 loop_name: str) -> None:
        super().__init__(message)
        self.partial_result = partial_result
        self.loop_name = loop_name


@dataclass(frozen=True)
class LoopOutcome:
    """Result of one loop on one clustered configuration."""

    loop_name: str
    unified_ii: int
    clustered_ii: int
    copies: int

    @property
    def deviation(self) -> int:
        """``II_clustered - II_unified`` (the figures' x-axis)."""
        return self.clustered_ii - self.unified_ii


@dataclass
class ExperimentResult:
    """All outcomes of one experiment, plus derived figure data."""

    label: str
    machine_name: str
    config_name: str
    outcomes: List[LoopOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def histogram(self) -> DeviationHistogram:
        """Deviation histogram over all outcomes."""
        histogram = DeviationHistogram()
        for outcome in self.outcomes:
            histogram.add(outcome.deviation)
        return histogram

    @property
    def match_percentage(self) -> float:
        """Percent of loops whose II matched the unified machine."""
        return self.histogram.match_percentage

    @property
    def total_copies(self) -> int:
        """Copies inserted across the whole suite."""
        return sum(outcome.copies for outcome in self.outcomes)

    @property
    def n_loops(self) -> int:
        """Number of loops measured."""
        return len(self.outcomes)


class UnifiedBaseline:
    """Cache of unified-machine IIs keyed by (machine name, loop name).

    Loop names must be unique within a suite (they are: kernels carry
    their kernel name, synthetic loops an index-stamped name).
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str], int] = {}

    def ii_for(self, ddg: Ddg, unified: Machine) -> int:
        """Unified II of one loop, computed once."""
        key = (unified.name, ddg.name)
        if key not in self._cache:
            result = compile_loop(ddg, unified)
            self._cache[key] = result.ii
        return self._cache[key]

    def __len__(self) -> int:
        return len(self._cache)


def run_experiment(
    loops: Sequence[Ddg],
    machine: Machine,
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    label: str = "",
    baseline: Optional[UnifiedBaseline] = None,
    verify: bool = False,
) -> ExperimentResult:
    """Measure one clustered configuration against its unified baseline."""
    if baseline is None:
        baseline = UnifiedBaseline()
    unified = machine.unified_equivalent()
    result = ExperimentResult(
        label=label or f"{machine.name}/{config.name}",
        machine_name=machine.name,
        config_name=config.name,
    )
    started = time.perf_counter()
    try:
        with obs.span(
            "experiment", label=result.label, machine=machine.name,
            loops=len(loops),
        ):
            for ddg in loops:
                with obs.span("loop", loop=ddg.name) as loop_span:
                    try:
                        unified_ii = baseline.ii_for(ddg, unified)
                        clustered = compile_loop(
                            ddg, machine, config, verify=verify
                        )
                    except CompilationError as exc:
                        obs.count("experiment.failures")
                        loop_span.note(outcome="failed")
                        raise ExperimentError(
                            f"loop {ddg.name!r} failed: {exc}",
                            partial_result=result,
                            loop_name=ddg.name,
                        ) from exc
                    deviation = clustered.ii - unified_ii
                    loop_span.note(
                        ii=clustered.ii, deviation=deviation,
                        copies=clustered.copy_count,
                    )
                obs.count("experiment.loops")
                result.outcomes.append(
                    LoopOutcome(
                        loop_name=ddg.name,
                        unified_ii=unified_ii,
                        clustered_ii=clustered.ii,
                        copies=clustered.copy_count,
                    )
                )
    finally:
        # Set unconditionally so failure paths still report wall time.
        result.elapsed_seconds = time.perf_counter() - started
    return result


def run_sweep(
    loops: Sequence[Ddg],
    machines: Iterable[Machine],
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    labels: Optional[Sequence[str]] = None,
    baseline: Optional[UnifiedBaseline] = None,
    verify: bool = False,
) -> List[ExperimentResult]:
    """Run one experiment per machine (the bus/port sweep pattern)."""
    if baseline is None:
        baseline = UnifiedBaseline()
    machine_list = list(machines)
    if labels is not None and len(labels) != len(machine_list):
        raise ValueError("labels must match machines one-to-one")
    results = []
    for index, machine in enumerate(machine_list):
        label = labels[index] if labels is not None else ""
        results.append(
            run_experiment(
                loops, machine, config,
                label=label, baseline=baseline, verify=verify,
            )
        )
    return results


def run_variant_comparison(
    loops: Sequence[Ddg],
    machine: Machine,
    configs: Iterable[AssignmentConfig],
    baseline: Optional[UnifiedBaseline] = None,
    verify: bool = False,
) -> List[ExperimentResult]:
    """Run one experiment per algorithm variant (Figures 12–13 pattern)."""
    if baseline is None:
        baseline = UnifiedBaseline()
    return [
        run_experiment(
            loops, machine, config,
            label=config.name, baseline=baseline, verify=verify,
        )
        for config in configs
    ]
