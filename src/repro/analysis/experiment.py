"""Experiment runner: one machine/algorithm configuration over a suite.

The paper's measurement protocol (Section 6): schedule every loop for the
clustered machine and for the equally wide unified machine, and report the
distribution of the II difference.  ``UnifiedBaseline`` caches the unified
IIs so sweeps that share a width (e.g. the bus-count sweeps of Figures
14–17) pay for the baseline only once.

Fault tolerance: by default a loop that fails to compile (or is
malformed) is recorded as a ``failed`` :class:`LoopOutcome` and the run
continues — one bad loop out of 1327 no longer destroys a sweep.
``strict=True`` restores the historical abort-on-first-failure
behaviour (:class:`ExperimentError`).  This serial runner is the
*reference implementation*; the parallel engine in
:mod:`repro.analysis.engine` must produce identical outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..core.driver import CompilationError, compile_loop
from ..core.variants import HEURISTIC_ITERATIVE, AssignmentConfig
from ..ddg.graph import Ddg
from ..machine.machine import Machine
from ..workloads.fingerprint import ddg_fingerprint
from .histogram import DeviationHistogram

#: Loop outcome statuses.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


class ExperimentError(CompilationError):
    """One loop failed to compile during a strict experiment run.

    Subclasses :class:`CompilationError` so existing handlers keep
    working; carries the partially filled :class:`ExperimentResult`
    (outcomes so far, ``elapsed_seconds`` set) and the failing loop's
    name for post-mortem analysis.
    """

    def __init__(self, message: str, partial_result: "ExperimentResult",
                 loop_name: str) -> None:
        super().__init__(message)
        self.partial_result = partial_result
        self.loop_name = loop_name


@dataclass(frozen=True)
class LoopOutcome:
    """Result of one loop on one clustered configuration.

    ``status`` is :data:`STATUS_OK` for a measured loop; ``failed`` and
    ``timeout`` outcomes keep the suite position but carry no
    measurement (``clustered_ii`` is 0; ``unified_ii`` is the baseline
    II when it was computed before the failure, else 0).
    """

    loop_name: str
    unified_ii: int
    clustered_ii: int
    copies: int
    status: str = STATUS_OK
    error: str = ""
    #: Lint gate results for this loop (all zero / empty when the
    #: experiment ran without ``lint_config``).
    lint_errors: int = 0
    lint_warnings: int = 0
    lint_codes: Tuple[str, ...] = ()
    #: Certify gate results for this loop (all zero / empty when the
    #: experiment ran without ``certify_config``).
    cert_errors: int = 0
    cert_codes: Tuple[str, ...] = ()
    #: Exact-oracle verdict (``tight``/``loose``/...) when the gate ran
    #: with ``exact=True``; empty otherwise.
    exact_status: str = ""

    @property
    def ok(self) -> bool:
        """True when the loop was measured successfully."""
        return self.status == STATUS_OK

    @property
    def deviation(self) -> int:
        """``II_clustered - II_unified`` (the figures' x-axis).

        Only meaningful for ``ok`` outcomes; figure/histogram consumers
        must filter on :attr:`ok` (``ExperimentResult.measured`` does).
        """
        return self.clustered_ii - self.unified_ii


@dataclass
class ExperimentResult:
    """All outcomes of one experiment, plus derived figure data.

    ``elapsed_seconds`` covers only this experiment's own clustered
    compiles; time spent filling the shared unified-baseline cache is
    tracked separately in ``baseline_seconds`` so sweep entries that
    happen to run first are not charged for work every entry reuses.
    """

    label: str
    machine_name: str
    config_name: str
    outcomes: List[LoopOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    baseline_seconds: float = 0.0
    cache_hits: int = 0

    @property
    def measured(self) -> List[LoopOutcome]:
        """Outcomes of loops that compiled successfully."""
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failures(self) -> List[LoopOutcome]:
        """Failed / timed-out outcomes."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def n_failed(self) -> int:
        """Number of loops that failed or timed out."""
        return len(self.failures)

    @property
    def histogram(self) -> DeviationHistogram:
        """Deviation histogram over the measured outcomes."""
        histogram = DeviationHistogram()
        for outcome in self.measured:
            histogram.add(outcome.deviation)
        return histogram

    @property
    def match_percentage(self) -> float:
        """Percent of measured loops whose II matched the unified machine."""
        return self.histogram.match_percentage

    @property
    def total_copies(self) -> int:
        """Copies inserted across the whole suite."""
        return sum(outcome.copies for outcome in self.measured)

    @property
    def n_loops(self) -> int:
        """Number of loops attempted (measured + failed)."""
        return len(self.outcomes)

    @property
    def total_lint_errors(self) -> int:
        """Lint errors across all outcomes (0 without a lint gate)."""
        return sum(outcome.lint_errors for outcome in self.outcomes)

    @property
    def total_lint_warnings(self) -> int:
        """Lint warnings across all outcomes (0 without a lint gate)."""
        return sum(outcome.lint_warnings for outcome in self.outcomes)

    def lint_code_counts(self) -> Dict[str, int]:
        """Loops-affected count per diagnostic code, over all outcomes."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for code in outcome.lint_codes:
                counts[code] = counts.get(code, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def total_cert_errors(self) -> int:
        """Certificate failures across all outcomes (0 without a gate)."""
        return sum(outcome.cert_errors for outcome in self.outcomes)

    def cert_code_counts(self) -> Dict[str, int]:
        """Loops-affected count per certificate code, over all outcomes."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for code in outcome.cert_codes:
                counts[code] = counts.get(code, 0) + 1
        return dict(sorted(counts.items()))

    def exact_status_counts(self) -> Dict[str, int]:
        """Loops per exact-oracle verdict (empty without ``exact``)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.exact_status:
                counts[outcome.exact_status] = (
                    counts.get(outcome.exact_status, 0) + 1
                )
        return dict(sorted(counts.items()))


class UnifiedBaseline:
    """Cache of unified-machine IIs keyed by (machine name, loop name).

    Loop names must be unique within a suite; a guard on the loop's
    content fingerprint turns a silent cache collision between two
    different loops sharing a name into a hard error.  The time spent
    compiling baselines accumulates in :attr:`elapsed_seconds` so
    experiment runners can report it separately from their own work.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str], int] = {}
        self._fingerprints: Dict[Tuple[str, str], str] = {}
        #: Total wall seconds spent compiling baseline (unified) loops.
        self.elapsed_seconds = 0.0

    def ii_for(self, ddg: Ddg, unified: Machine) -> int:
        """Unified II of one loop, computed once."""
        key = (unified.name, ddg.name)
        fingerprint = ddg_fingerprint(ddg)
        known = self._fingerprints.get(key)
        if known is not None and known != fingerprint:
            raise ValueError(
                f"duplicate loop name {ddg.name!r} with different "
                f"content on machine {unified.name!r}: baseline cache "
                f"keys would collide"
            )
        if key not in self._cache:
            started = time.perf_counter()
            try:
                result = compile_loop(ddg, unified)
            finally:
                self.elapsed_seconds += time.perf_counter() - started
            self._cache[key] = result.ii
            self._fingerprints[key] = fingerprint
        return self._cache[key]

    def lookup(self, unified_name: str, loop_name: str) -> Optional[int]:
        """Cached II, or None — never compiles."""
        return self._cache.get((unified_name, loop_name))

    def seed(self, unified_name: str, ddg: Ddg, ii: int) -> None:
        """Record an II computed elsewhere (a worker process, a cache)."""
        key = (unified_name, ddg.name)
        fingerprint = ddg_fingerprint(ddg)
        known = self._fingerprints.get(key)
        if known is not None and known != fingerprint:
            raise ValueError(
                f"duplicate loop name {ddg.name!r} with different "
                f"content on machine {unified_name!r}: baseline cache "
                f"keys would collide"
            )
        self._cache[key] = ii
        self._fingerprints[key] = fingerprint

    def __len__(self) -> int:
        return len(self._cache)


def run_experiment(
    loops: Sequence[Ddg],
    machine: Machine,
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    label: str = "",
    baseline: Optional[UnifiedBaseline] = None,
    verify: bool = False,
    strict: bool = False,
    lint_config=None,
    certify_config=None,
) -> ExperimentResult:
    """Measure one clustered configuration against its unified baseline.

    A loop that raises :class:`CompilationError` (or ``ValueError``
    for a malformed graph) is recorded as a ``failed`` outcome and the
    run continues.  With ``strict=True`` a ``CompilationError`` aborts
    the run as an :class:`ExperimentError` carrying the partial result
    (malformed-graph ``ValueError`` propagates unchanged, as it always
    did).

    ``lint_config`` (a :class:`repro.lint.LintConfig`) runs the static
    analyzer on every compiled loop and records the per-loop diagnostic
    counts/codes on the :class:`LoopOutcome`; with
    ``lint_config.strict`` a loop whose lint report contains errors
    becomes a ``failed`` outcome (or aborts under ``strict=True``, like
    any other compilation failure).

    ``certify_config`` (a :class:`repro.certify.CertifyConfig`) emits
    and independently verifies a compilation certificate for every
    compiled loop, recording the failure count / codes (and the exact
    oracle's verdict, when enabled) on the :class:`LoopOutcome`; with
    ``certify_config.strict`` a certificate failure fails the loop.
    """
    if baseline is None:
        baseline = UnifiedBaseline()
    unified = machine.unified_equivalent()
    result = ExperimentResult(
        label=label or f"{machine.name}/{config.name}",
        machine_name=machine.name,
        config_name=config.name,
    )
    started = time.perf_counter()
    baseline_before = baseline.elapsed_seconds
    try:
        with obs.span(
            "experiment", label=result.label, machine=machine.name,
            loops=len(loops),
        ):
            for ddg in loops:
                with obs.span("loop", loop=ddg.name) as loop_span:
                    unified_ii = 0
                    try:
                        unified_ii = baseline.ii_for(ddg, unified)
                        clustered = compile_loop(
                            ddg, machine, config, verify=verify,
                            lint_config=lint_config,
                            certify_config=certify_config,
                        )
                    except CompilationError as exc:
                        obs.count("experiment.failures")
                        loop_span.note(outcome="failed")
                        if strict:
                            raise ExperimentError(
                                f"loop {ddg.name!r} failed: {exc}",
                                partial_result=result,
                                loop_name=ddg.name,
                            ) from exc
                        outcome = LoopOutcome(
                            loop_name=ddg.name,
                            unified_ii=unified_ii,
                            clustered_ii=0,
                            copies=0,
                            status=STATUS_FAILED,
                            error=str(exc),
                        )
                    except ValueError as exc:
                        if strict:
                            raise
                        obs.count("experiment.failures")
                        loop_span.note(outcome="failed")
                        outcome = LoopOutcome(
                            loop_name=ddg.name,
                            unified_ii=unified_ii,
                            clustered_ii=0,
                            copies=0,
                            status=STATUS_FAILED,
                            error=f"invalid loop: {exc}",
                        )
                    else:
                        deviation = clustered.ii - unified_ii
                        loop_span.note(
                            ii=clustered.ii, deviation=deviation,
                            copies=clustered.copy_count,
                        )
                        obs.count("experiment.loops")
                        report = clustered.lint_report
                        certified = clustered.certified
                        outcome = LoopOutcome(
                            loop_name=ddg.name,
                            unified_ii=unified_ii,
                            clustered_ii=clustered.ii,
                            copies=clustered.copy_count,
                            lint_errors=(
                                len(report.errors) if report else 0
                            ),
                            lint_warnings=(
                                len(report.warnings) if report else 0
                            ),
                            lint_codes=(
                                tuple(report.codes()) if report else ()
                            ),
                            cert_errors=(
                                len(certified.issues)
                                if certified else 0
                            ),
                            cert_codes=(
                                certified.codes() if certified else ()
                            ),
                            exact_status=(
                                certified.exact_status
                                if certified else ""
                            ),
                        )
                result.outcomes.append(outcome)
    finally:
        # Set unconditionally so failure paths still report wall time;
        # baseline compile time is reported on its own, not charged to
        # whichever experiment happened to run first.
        result.baseline_seconds = \
            baseline.elapsed_seconds - baseline_before
        result.elapsed_seconds = (
            time.perf_counter() - started - result.baseline_seconds
        )
    return result


def run_sweep(
    loops: Sequence[Ddg],
    machines: Iterable[Machine],
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    labels: Optional[Sequence[str]] = None,
    baseline: Optional[UnifiedBaseline] = None,
    verify: bool = False,
    strict: bool = False,
    lint_config=None,
    certify_config=None,
) -> List[ExperimentResult]:
    """Run one experiment per machine (the bus/port sweep pattern)."""
    if baseline is None:
        baseline = UnifiedBaseline()
    machine_list = list(machines)
    if labels is not None and len(labels) != len(machine_list):
        raise ValueError("labels must match machines one-to-one")
    results = []
    for index, machine in enumerate(machine_list):
        label = labels[index] if labels is not None else ""
        results.append(
            run_experiment(
                loops, machine, config,
                label=label, baseline=baseline, verify=verify,
                strict=strict, lint_config=lint_config,
                certify_config=certify_config,
            )
        )
    return results


def run_variant_comparison(
    loops: Sequence[Ddg],
    machine: Machine,
    configs: Iterable[AssignmentConfig],
    baseline: Optional[UnifiedBaseline] = None,
    verify: bool = False,
    strict: bool = False,
    lint_config=None,
    certify_config=None,
) -> List[ExperimentResult]:
    """Run one experiment per algorithm variant (Figures 12–13 pattern)."""
    if baseline is None:
        baseline = UnifiedBaseline()
    return [
        run_experiment(
            loops, machine, config,
            label=config.name, baseline=baseline, verify=verify,
            strict=strict, lint_config=lint_config,
            certify_config=certify_config,
        )
        for config in configs
    ]
