"""Register pressure analysis of modulo schedules.

Clustering exists to keep register files small (paper Section 1.1), so a
natural question about any clustered schedule is how many live values
each cluster's register file must hold.  This module computes **MaxLive**
— the maximum number of simultaneously live values — per cluster, using
the standard modulo-scheduling lifetime model:

* a value is born when its producer *finishes* (issue + latency) and
  dies at the *last* issue that reads it on that cluster, adjusted by
  ``II × distance`` for loop-carried uses;
* lifetimes longer than II overlap with later iterations of themselves,
  so a lifetime of length L contributes ``ceil(L / II)`` simultaneous
  copies (the quantity modulo variable expansion or rotating registers
  must provide);
* on a clustered machine a value read by a copy lives in the *source*
  register file until the copy issues, and the copy's result then lives
  in every *target* cluster's file — exactly how the hardware behaves.

Lifetime extraction is shared with the register allocator
(:mod:`repro.regalloc.lifetimes`), so pressure numbers and allocations
are always computed from the same model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..regalloc.lifetimes import extract_lifetimes
from ..scheduling.schedule import Schedule


@dataclass(frozen=True)
class RegisterPressure:
    """MaxLive per cluster plus the machine-wide total."""

    per_cluster: Dict[int, int]
    total_max_live: int

    def max_live(self, cluster: int) -> int:
        """MaxLive of one cluster's register file."""
        return self.per_cluster.get(cluster, 0)


def _live_copies(length: int, ii: int) -> int:
    """Simultaneous instances of a lifetime of ``length`` cycles."""
    if length <= 0:
        return 1  # born and consumed within the cycle: still one register
    return -(-length // ii)


def register_pressure(schedule: Schedule) -> RegisterPressure:
    """Compute per-cluster MaxLive of ``schedule``.

    Each lifetime (shared with the allocator) is folded modulo II: a
    length-L lifetime covers every kernel row ``L // II`` times plus one
    more for the ``L % II`` rows after its birth; zero-length lifetimes
    still hold a register in their birth row.
    """
    ii = schedule.ii
    live: Dict[int, List[int]] = {
        cluster: [0] * ii
        for cluster in schedule.annotated.machine.cluster_indices
    }
    for lifetime in extract_lifetimes(schedule):
        rows = live[lifetime.cluster]
        length = lifetime.length
        if length <= 0:
            rows[lifetime.birth % ii] += 1
            continue
        full_rows, partial = divmod(length, ii)
        for row in range(ii):
            rows[row] += full_rows
        for offset in range(partial):
            rows[(lifetime.birth + offset) % ii] += 1

    per_cluster = {
        cluster: max(rows) if rows else 0 for cluster, rows in live.items()
    }
    return RegisterPressure(
        per_cluster=per_cluster,
        total_max_live=sum(per_cluster.values()),
    )


def mve_unroll_factor(schedule: Schedule) -> int:
    """Kernel unroll factor required by modulo variable expansion.

    Without rotating register files, a value whose lifetime exceeds II
    would be overwritten by the next iteration's instance; modulo
    variable expansion (Rau et al., PLDI'92 — cited as [21] by the
    paper) unrolls the kernel so each instance gets its own register.
    The required factor is the maximum over values of
    ``ceil(lifetime / II)`` (1 when no lifetime exceeds II).
    """
    ii = schedule.ii
    factor = 1
    for lifetime in extract_lifetimes(schedule):
        factor = max(factor, _live_copies(lifetime.length, ii))
    return factor


def format_pressure(pressure: RegisterPressure) -> str:
    """One line per cluster, e.g. for example scripts."""
    parts = [
        f"C{cluster}: {value}"
        for cluster, value in sorted(pressure.per_cluster.items())
    ]
    return (
        "MaxLive per cluster: " + ", ".join(parts)
        + f"  (total {pressure.total_max_live})"
    )
