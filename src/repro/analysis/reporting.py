"""Text rendering of experiment results in the paper's formats.

Every figure is a grouped histogram (x = II deviation, y = % of loops,
one series per configuration); every table is a small grid.  The
benchmark harness prints these renderings so a run regenerates the same
rows/series the paper reports.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .experiment import ExperimentResult

#: Width of the ASCII bars in chart rendering.
BAR_WIDTH = 40


def deviation_table(
    results: Sequence[ExperimentResult], max_bucket: int = 3
) -> str:
    """Figure-style table: one column per series, one row per deviation."""
    if not results:
        return "(no results)"
    labels = [result.label for result in results]
    col_width = max(12, max(len(label) for label in labels) + 2)
    header = f"{'II - II_unified':<16}" + "".join(
        f"{label:>{col_width}}" for label in labels
    )
    lines = [header, "-" * len(header)]
    bucket_rows = [result.histogram.buckets(max_bucket) for result in results]
    for row_index in range(max_bucket + 1):
        bucket_label = bucket_rows[0][row_index][0]
        cells = "".join(
            f"{rows[row_index][1]:>{col_width - 1}.1f}%"
            for rows in bucket_rows
        )
        lines.append(f"x = {bucket_label:<12}" + cells)
    lines.append(
        f"{'loops':<16}"
        + "".join(f"{result.n_loops:>{col_width}}" for result in results)
    )
    return "\n".join(lines)


def match_bar_chart(results: Sequence[ExperimentResult]) -> str:
    """ASCII bar chart of the x = 0 match percentage per series."""
    if not results:
        return "(no results)"
    width = max(len(result.label) for result in results)
    lines = []
    for result in results:
        pct = result.match_percentage
        bar = "#" * int(round(pct / 100.0 * BAR_WIDTH))
        lines.append(f"{result.label:<{width}}  {bar:<{BAR_WIDTH}} {pct:5.1f}%")
    return "\n".join(lines)


def cumulative_table(
    results: Sequence[ExperimentResult], max_deviation: int = 3
) -> str:
    """Cumulative view: percent of loops within x cycles of unified."""
    if not results:
        return "(no results)"
    labels = [result.label for result in results]
    col_width = max(12, max(len(label) for label in labels) + 2)
    header = f"{'within x of uni':<16}" + "".join(
        f"{label:>{col_width}}" for label in labels
    )
    lines = [header, "-" * len(header)]
    for deviation in range(max_deviation + 1):
        cells = "".join(
            f"{result.histogram.percentage_at_most(deviation):>{col_width - 1}.1f}%"
            for result in results
        )
        lines.append(f"x <= {deviation:<11}" + cells)
    return "\n".join(lines)


def table3_rows(
    entries: Sequence[Tuple[int, int, int, float]]
) -> str:
    """Render Table 3: clusters / buses / ports / percent-of-unified."""
    header = f"{'Clusters':>8} {'Buses':>6} {'Ports':>6} {'% of Unified':>13}"
    lines = [header, "-" * len(header)]
    for clusters, buses, ports, pct in entries:
        lines.append(f"{clusters:>8} {buses:>6} {ports:>6} {pct:>12.1f}%")
    return "\n".join(lines)


def experiment_summary(result: ExperimentResult) -> str:
    """One-line summary used in bench logs."""
    histogram = result.histogram
    failed = (f"failed={result.n_failed} " if result.n_failed else "")
    timing = f"{result.elapsed_seconds:.1f}s"
    if result.baseline_seconds > 0:
        timing += f" + {result.baseline_seconds:.1f}s baseline"
    return (
        f"{result.label}: match={histogram.match_percentage:.1f}% "
        f"within1={histogram.percentage_at_most(1):.1f}% "
        f"mean_dev={histogram.mean_deviation:.2f} "
        f"copies={result.total_copies} "
        f"loops={result.n_loops} {failed}({timing})"
    )
