"""Experiment harness: deviation histograms, runners, text reports."""

from .campaign import Campaign, campaign_to_markdown, run_campaign
from .engine import (
    EngineOptions,
    ResultCache,
    outcome_cache_key,
    run_engine_experiment,
)
from .experiment import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExperimentError,
    ExperimentResult,
    LoopOutcome,
    UnifiedBaseline,
    run_experiment,
    run_sweep,
    run_variant_comparison,
)
from .figures import grouped_bar_chart, outcomes_to_csv, results_to_csv
from .histogram import DeviationHistogram, histogram_of
from .registers import (
    RegisterPressure,
    format_pressure,
    mve_unroll_factor,
    register_pressure,
)
from .slices import SlicedResult, by_recurrence, by_size, slice_result
from .reporting import (
    cumulative_table,
    deviation_table,
    experiment_summary,
    match_bar_chart,
    table3_rows,
)

__all__ = [
    "Campaign",
    "DeviationHistogram",
    "EngineOptions",
    "ExperimentError",
    "ExperimentResult",
    "LoopOutcome",
    "ResultCache",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "RegisterPressure",
    "SlicedResult",
    "by_recurrence",
    "by_size",
    "campaign_to_markdown",
    "UnifiedBaseline",
    "cumulative_table",
    "deviation_table",
    "experiment_summary",
    "format_pressure",
    "grouped_bar_chart",
    "histogram_of",
    "match_bar_chart",
    "mve_unroll_factor",
    "outcome_cache_key",
    "outcomes_to_csv",
    "register_pressure",
    "results_to_csv",
    "run_campaign",
    "run_engine_experiment",
    "run_experiment",
    "run_sweep",
    "run_variant_comparison",
    "slice_result",
    "table3_rows",
]
