"""II-deviation histograms — the y-axis of every figure in the paper.

Every evaluation figure plots, for one machine/algorithm configuration,
the percentage of loops whose clustered II exceeds the unified-machine II
by x cycles (x = 0 is "all communication hidden").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class DeviationHistogram:
    """Distribution of ``II_clustered - II_unified`` over a loop suite."""

    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, deviation: int) -> None:
        """Record one loop's deviation."""
        self.counts[deviation] = self.counts.get(deviation, 0) + 1

    @property
    def n_loops(self) -> int:
        """Number of loops recorded."""
        return sum(self.counts.values())

    def percentage(self, deviation: int) -> float:
        """Percent of loops at exactly this deviation."""
        total = self.n_loops
        if total == 0:
            return 0.0
        return 100.0 * self.counts.get(deviation, 0) / total

    def percentage_at_most(self, deviation: int) -> float:
        """Percent of loops with deviation <= the given value."""
        total = self.n_loops
        if total == 0:
            return 0.0
        within = sum(
            count for dev, count in self.counts.items() if dev <= deviation
        )
        return 100.0 * within / total

    @property
    def match_percentage(self) -> float:
        """Percent of loops matching the unified machine's II (x = 0)."""
        return self.percentage(0)

    @property
    def max_deviation(self) -> int:
        """Largest deviation observed (0 for an empty histogram)."""
        return max(self.counts, default=0)

    @property
    def mean_deviation(self) -> float:
        """Average deviation in cycles."""
        total = self.n_loops
        if total == 0:
            return 0.0
        return sum(dev * count for dev, count in self.counts.items()) / total

    def buckets(self, max_bucket: int = 3) -> List[Tuple[str, float]]:
        """Figure-style buckets: 0, 1, ..., max_bucket-1, and
        ``>= max_bucket`` collapsed into one final bucket."""
        rows: List[Tuple[str, float]] = [
            (str(dev), self.percentage(dev)) for dev in range(max_bucket)
        ]
        tail = 100.0 - self.percentage_at_most(max_bucket - 1)
        rows.append((f"{max_bucket}+", tail if self.n_loops else 0.0))
        return rows


def histogram_of(deviations: Iterable[int]) -> DeviationHistogram:
    """Build a histogram from raw deviation values."""
    histogram = DeviationHistogram()
    for deviation in deviations:
        histogram.add(deviation)
    return histogram
