"""Figure-style renderings and machine-readable exports.

The paper's figures are grouped bar charts: x = II deviation from the
unified machine, one bar per configuration per x value, y = percent of
loops.  :func:`grouped_bar_chart` renders exactly that in ASCII;
:func:`results_to_csv` and :func:`outcomes_to_csv` export the same data
for external plotting tools.
"""

from __future__ import annotations

import io
from typing import List, Sequence

from .experiment import ExperimentResult

#: Height of the ASCII chart in character rows.
CHART_HEIGHT = 12


def grouped_bar_chart(
    results: Sequence[ExperimentResult],
    max_bucket: int = 3,
    height: int = CHART_HEIGHT,
) -> str:
    """Render the paper's grouped-bar figure layout in ASCII.

    One group of bars per deviation bucket (0, 1, …, ``max_bucket``+),
    one bar per series within each group, scaled to 100 %.
    """
    if not results:
        return "(no results)"
    series = [result.histogram.buckets(max_bucket) for result in results]
    n_groups = max_bucket + 1
    n_series = len(results)
    bar_glyphs = "#*+o%@"[:max(n_series, 1)]

    # Column layout: groups separated by two spaces, one column per bar.
    lines: List[str] = []
    for level in range(height, 0, -1):
        threshold = 100.0 * level / height
        row = io.StringIO()
        row.write(f"{threshold:5.0f}% |" if level % 3 == 0 else "       |")
        for group in range(n_groups):
            row.write(" ")
            for index in range(n_series):
                pct = series[index][group][1]
                row.write(bar_glyphs[index % len(bar_glyphs)]
                          if pct >= threshold - 1e-9 else " ")
            row.write(" ")
        lines.append(row.getvalue().rstrip())
    axis = io.StringIO()
    axis.write("       +")
    for group in range(n_groups):
        axis.write("-" * (n_series + 2))
    lines.append(axis.getvalue())
    labels = io.StringIO()
    labels.write("        ")
    for group in range(n_groups):
        label = series[0][group][0]
        labels.write(f" {label:^{n_series}} ")
    lines.append(labels.getvalue().rstrip())
    lines.append("        (x = II deviation from the unified machine)")
    legend = [
        f"  {bar_glyphs[i % len(bar_glyphs)]} = {result.label} "
        f"({result.match_percentage:.1f}% at x=0)"
        for i, result in enumerate(results)
    ]
    return "\n".join(lines + legend)


def results_to_csv(
    results: Sequence[ExperimentResult], max_bucket: int = 3
) -> str:
    """Histogram summary per series, one row per (series, bucket)."""
    lines = ["label,machine,config,deviation,percent,loops"]
    for result in results:
        for label, pct in result.histogram.buckets(max_bucket):
            lines.append(
                f"{result.label},{result.machine_name},"
                f"{result.config_name},{label},{pct:.3f},{result.n_loops}"
            )
    return "\n".join(lines) + "\n"


def outcomes_to_csv(result: ExperimentResult) -> str:
    """Raw per-loop outcomes of one experiment.

    Failed / timed-out loops are exported too (status column) so
    downstream analysis can see the full suite; their measurement
    columns carry the placeholder zeros of the outcome record.
    """
    lines = ["loop,unified_ii,clustered_ii,deviation,copies,status"]
    for outcome in result.outcomes:
        lines.append(
            f"{outcome.loop_name},{outcome.unified_ii},"
            f"{outcome.clustered_ii},{outcome.deviation},"
            f"{outcome.copies},{outcome.status}"
        )
    return "\n".join(lines) + "\n"
