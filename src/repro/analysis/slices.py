"""Slicing experiment results by loop population characteristics.

The paper's suite statistics call out that 301 of the 1327 loops contain
recurrences; the assignment algorithm's SCC machinery only matters on
that slice.  These helpers split an experiment's outcomes into
subpopulations (by a predicate over the loop DDGs) so the harness can
report, e.g., match rates for recurrence-bearing loops separately from
streaming loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..ddg.graph import Ddg
from ..ddg.scc import find_sccs
from .experiment import ExperimentResult, LoopOutcome


@dataclass
class SlicedResult:
    """One experiment's outcomes split into labelled subpopulations."""

    source: ExperimentResult
    slices: Dict[str, List[LoopOutcome]]

    def match_percentage(self, label: str) -> float:
        """x = 0 rate within one slice."""
        outcomes = self.slices.get(label, [])
        if not outcomes:
            return 0.0
        matches = sum(1 for o in outcomes if o.deviation == 0)
        return 100.0 * matches / len(outcomes)

    def size(self, label: str) -> int:
        """Loops in one slice."""
        return len(self.slices.get(label, []))

    def format_table(self) -> str:
        """One line per slice."""
        lines = [f"{self.source.label}:"]
        for label in sorted(self.slices):
            lines.append(
                f"  {label:<24} {self.size(label):>5} loops   "
                f"match {self.match_percentage(label):5.1f}%"
            )
        return "\n".join(lines)


def slice_result(
    result: ExperimentResult,
    loops: Sequence[Ddg],
    classifier: Callable[[Ddg], str],
) -> SlicedResult:
    """Split ``result`` by ``classifier`` applied to the matching loops.

    ``loops`` must be the exact suite the experiment ran over (matched by
    loop name).  Only measured outcomes are sliced; failed or timed-out
    loops carry no II to classify.
    """
    by_name = {loop.name: loop for loop in loops}
    slices: Dict[str, List[LoopOutcome]] = {}
    for outcome in result.measured:
        loop = by_name.get(outcome.loop_name)
        if loop is None:
            raise KeyError(
                f"outcome for unknown loop {outcome.loop_name!r}"
            )
        label = classifier(loop)
        slices.setdefault(label, []).append(outcome)
    return SlicedResult(source=result, slices=slices)


def by_recurrence(loop: Ddg) -> str:
    """Classifier: loops with vs without multi-node recurrences."""
    partition = find_sccs(loop)
    if any(len(scc) >= 2 for scc in partition):
        return "with recurrences"
    return "streaming only"


def by_size(loop: Ddg) -> str:
    """Classifier: small / medium / large loop bodies."""
    if len(loop) <= 8:
        return "small (<=8 ops)"
    if len(loop) <= 24:
        return "medium (9-24 ops)"
    return "large (>24 ops)"
