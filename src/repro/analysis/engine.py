"""Parallel, fault-tolerant experiment engine.

:func:`run_engine_experiment` measures the same thing as the serial
reference runner (:func:`repro.analysis.experiment.run_experiment`) —
one clustered configuration against its unified baseline over a loop
corpus — but adds the operational machinery a 1327-loop × many-machine
sweep needs:

* **warm-pool fan-out** — ``workers=N`` chunks the corpus over the
  persistent fork-server pool (:mod:`repro.service.pool`; workers stay
  warm across runs, so repeat dispatches skip process startup);
  results merge back in suite order, so the outcome list is
  bit-identical to the serial path regardless of completion order, and
  a crashed worker degrades its chunk to recorded ``failed`` outcomes
  after the pool's retry budget is spent;
* **fault isolation** — a loop that raises ``CompilationError`` (or
  ``ValueError`` for a malformed graph) becomes a recorded ``failed``
  outcome; ``strict=True`` restores the abort-on-first-failure
  :class:`~repro.analysis.experiment.ExperimentError`;
* **per-loop wall-time budget** — ``timeout_seconds`` arms a SIGALRM
  timer around each loop (saving and restoring any ambient ITIMER_REAL
  so nested budgets compose); off the main thread, where SIGALRM is
  undeliverable, a watchdog thread enforces the same budget and the
  ``engine.budget_fallback`` counter records it; either way a loop
  that blows the budget is gracefully skipped as a ``timeout`` outcome;
* **on-disk result cache** — ``cache_dir`` persists every outcome under
  a content hash of (DDG, machine, config), and ``resume=True`` replays
  cached outcomes so an interrupted sweep restarts for free;
* **observability merge** — when the parent is tracing, each worker
  records its own span tree and counters, which are grafted back into
  the parent collector (see :meth:`repro.obs.Trace.graft`).

The serial runner stays the reference implementation: for any corpus,
``run_engine_experiment(...).outcomes == run_experiment(...).outcomes``.
"""

from __future__ import annotations

import ctypes
import dataclasses
import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..core.driver import CompilationError, compile_loop
from ..core.variants import HEURISTIC_ITERATIVE, AssignmentConfig
from ..ddg.graph import Ddg
from ..machine.machine import Machine
from ..service.pool import (
    DeadlineExceeded,
    WorkerCrashError,
    shared_pool,
)
from ..workloads.fingerprint import (
    config_fingerprint,
    ddg_fingerprint,
    machine_fingerprint,
)
from .experiment import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExperimentError,
    ExperimentResult,
    LoopOutcome,
    UnifiedBaseline,
)

#: Bumped whenever the cached-outcome schema changes.
CACHE_VERSION = 3


@dataclass(frozen=True)
class EngineOptions:
    """Operational knobs of the engine (measurement knobs stay on the
    ``run_engine_experiment`` signature, mirroring the serial runner)."""

    #: Worker processes; 0 or 1 runs in-process (still fault-tolerant,
    #: budgeted, and cached — just not parallel).
    workers: int = 0
    #: Abort on the first failing loop instead of recording it.
    strict: bool = False
    #: Per-loop wall-time budget in seconds; 0 disables the budget.
    timeout_seconds: float = 0.0
    #: Directory for the on-disk outcome cache; None disables caching.
    cache_dir: Optional[str] = None
    #: Replay cached outcomes instead of recompiling them.
    resume: bool = False
    #: Loops per worker task; 0 picks a size that gives each worker
    #: several tasks (smooths uneven per-loop compile times).
    chunk_size: int = 0
    #: Optional :class:`repro.lint.LintConfig` gate: lint every
    #: compiled loop, record per-loop diagnostic counts/codes on the
    #: outcome; with ``lint_config.strict`` a lint error fails the
    #: loop.  (The config is frozen and picklable, so it rides into
    #: worker processes unchanged.)
    lint_config: Optional[object] = None
    #: Optional :class:`repro.certify.CertifyConfig` gate: emit and
    #: independently verify the certificate of every compiled loop,
    #: recording failure counts/codes (and the exact oracle's verdict)
    #: on the outcome.  Frozen and picklable, same as ``lint_config``.
    certify_config: Optional[object] = None
    #: A :class:`repro.service.WorkerPool` to dispatch chunks on; None
    #: uses the process-wide shared warm pool (the default — repeat
    #: runs then skip worker startup entirely).
    pool: Optional[object] = dataclasses.field(
        default=None, compare=False, repr=False
    )


# ----------------------------------------------------------------------
# Content-addressed result cache
# ----------------------------------------------------------------------
# machine_fingerprint / config_fingerprint moved to
# repro.workloads.fingerprint (shared with the service's sharded cache)
# and are re-exported above for compatibility; the digests are
# unchanged, so existing cache entries stay valid.
def lint_fingerprint(lint_config) -> Optional[str]:
    """Hex digest of a lint gate's configuration (None when no gate)."""
    if lint_config is None:
        return None
    doc = {
        "disable": sorted(lint_config.disable),
        "enable": sorted(lint_config.enable),
        "severity": dict(sorted(lint_config.severity.items())),
        "strict": lint_config.strict,
        "sample": lint_config.differential_sample,
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def certify_fingerprint(certify_config) -> Optional[str]:
    """Hex digest of a certify gate's configuration (None when off)."""
    if certify_config is None:
        return None
    doc = {
        "strict": certify_config.strict,
        "exact": certify_config.exact,
        "node_budget": certify_config.exact_node_budget,
        "backtrack_budget": certify_config.exact_backtrack_budget,
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def outcome_cache_key(
    ddg: Ddg, machine: Machine, config: AssignmentConfig,
    verify: bool = False, lint_config=None, certify_config=None,
) -> str:
    """Cache key of one (loop, machine, config) measurement."""
    doc = {
        "version": CACHE_VERSION,
        "loop": ddg.name,
        "ddg": ddg_fingerprint(ddg),
        "machine": machine_fingerprint(machine),
        "config": config_fingerprint(config),
        "verify": verify,
        "lint": lint_fingerprint(lint_config),
        "certify": certify_fingerprint(certify_config),
    }
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of per-loop outcomes, one JSON file per cache key.

    Writes are atomic (temp file + rename) so a killed sweep never
    leaves a truncated entry behind.  Timeout outcomes are never
    stored: a bigger budget on the next run should retry them.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[LoopOutcome]:
        """The cached outcome under ``key``, or None."""
        try:
            with open(self._path(key)) as handle:
                doc = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if doc.get("version") != CACHE_VERSION:
            return None
        return LoopOutcome(
            loop_name=doc["loop_name"],
            unified_ii=int(doc["unified_ii"]),
            clustered_ii=int(doc["clustered_ii"]),
            copies=int(doc["copies"]),
            status=doc.get("status", STATUS_OK),
            error=doc.get("error", ""),
            lint_errors=int(doc.get("lint_errors", 0)),
            lint_warnings=int(doc.get("lint_warnings", 0)),
            lint_codes=tuple(doc.get("lint_codes", ())),
            cert_errors=int(doc.get("cert_errors", 0)),
            cert_codes=tuple(doc.get("cert_codes", ())),
            exact_status=doc.get("exact_status", ""),
        )

    def store(self, key: str, outcome: LoopOutcome) -> None:
        """Persist one outcome (no-op for timeouts)."""
        if outcome.status == STATUS_TIMEOUT:
            return
        doc = {
            "version": CACHE_VERSION,
            "loop_name": outcome.loop_name,
            "unified_ii": outcome.unified_ii,
            "clustered_ii": outcome.clustered_ii,
            "copies": outcome.copies,
            "status": outcome.status,
            "error": outcome.error,
            "lint_errors": outcome.lint_errors,
            "lint_warnings": outcome.lint_warnings,
            "lint_codes": list(outcome.lint_codes),
            "cert_errors": outcome.cert_errors,
            "cert_codes": list(outcome.cert_codes),
            "exact_status": outcome.exact_status,
        }
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(doc, handle)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(
            1 for entry in os.listdir(self.root)
            if entry.endswith(".json")
        )


# ----------------------------------------------------------------------
# Per-loop measurement (shared by the in-process and worker paths)
# ----------------------------------------------------------------------
class _LoopTimeout(Exception):
    """Raised by the SIGALRM handler when a loop blows its budget."""


def _alarm_handler(signum, frame):  # pragma: no cover - trivial
    raise _LoopTimeout()


def _raise_timeout_in_thread(thread_id: int,
                             fired: threading.Event) -> None:
    """Watchdog body: asynchronously raise :class:`_LoopTimeout` in the
    budgeted thread (lands at its next bytecode boundary)."""
    fired.set()
    modified = ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id), ctypes.py_object(_LoopTimeout)
    )
    if modified > 1:  # pragma: no cover - undo a bad broadcast
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), None
        )


class _TimeBudget:
    """Wall-time budget around one loop's compiles.

    On the main thread this arms ``ITIMER_REAL``/SIGALRM — and, unlike
    the earlier implementation (which disarmed the timer outright on
    exit), it saves the ambient timer on ``__enter__`` and re-arms it
    with its *remaining* interval on ``__exit__``, so nested budgets
    and host processes that use ITIMER_REAL themselves keep their
    deadlines.

    Off the main thread SIGALRM is undeliverable, so the budget
    degrades to a watchdog :class:`threading.Timer` that raises
    :class:`_LoopTimeout` in the budgeted thread via
    ``PyThreadState_SetAsyncExc``; every budget enforced this way bumps
    the ``engine.budget_fallback`` counter.  The async raise only lands
    at a bytecode boundary, so code wedged inside C is caught by the
    worker pool's process-level deadline, not here.
    """

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self._armed = False
        self._previous_handler = None
        self._prior_timer = (0.0, 0.0)
        self._entered_at = 0.0
        self._watchdog: Optional[threading.Timer] = None
        self._fallback_fired = threading.Event()

    def __enter__(self) -> "_TimeBudget":
        if self.seconds <= 0:
            return self
        if threading.current_thread() is threading.main_thread():
            self._previous_handler = signal.signal(
                signal.SIGALRM, _alarm_handler
            )
            self._entered_at = time.monotonic()
            self._prior_timer = signal.setitimer(
                signal.ITIMER_REAL, self.seconds
            )
            self._armed = True
        else:
            self._watchdog = threading.Timer(
                self.seconds, _raise_timeout_in_thread,
                args=(threading.get_ident(), self._fallback_fired),
            )
            self._watchdog.daemon = True
            self._watchdog.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous_handler)
            prior_seconds, prior_interval = self._prior_timer
            if prior_seconds > 0:
                elapsed = time.monotonic() - self._entered_at
                remaining = max(prior_seconds - elapsed, 1e-6)
                signal.setitimer(
                    signal.ITIMER_REAL, remaining, prior_interval
                )
        elif self._watchdog is not None:
            self._watchdog.cancel()
            if self._fallback_fired.is_set():
                obs.count("engine.budget_fallback")
        return False


def _measure_loop(
    ddg: Ddg,
    machine: Machine,
    unified: Machine,
    config: AssignmentConfig,
    verify: bool,
    timeout_seconds: float,
    unified_ii_hint: Optional[int],
    lint_config=None,
    certify_config=None,
) -> Tuple[LoopOutcome, float]:
    """One loop's outcome plus the seconds spent on its unified baseline.

    Mirrors the serial runner's per-loop body exactly (same exception
    taxonomy, same outcome fields) so engine outcomes stay bit-identical
    to the reference implementation.
    """
    unified_ii = 0
    baseline_seconds = 0.0
    with obs.span("loop", loop=ddg.name) as loop_span:
        try:
            with _TimeBudget(timeout_seconds):
                if unified_ii_hint is not None:
                    unified_ii = unified_ii_hint
                else:
                    baseline_started = time.perf_counter()
                    try:
                        unified_ii = compile_loop(ddg, unified).ii
                    finally:
                        baseline_seconds += (
                            time.perf_counter() - baseline_started
                        )
                clustered = compile_loop(
                    ddg, machine, config, verify=verify,
                    lint_config=lint_config,
                    certify_config=certify_config,
                )
        except CompilationError as exc:
            obs.count("experiment.failures")
            loop_span.note(outcome="failed")
            outcome = LoopOutcome(
                loop_name=ddg.name, unified_ii=unified_ii,
                clustered_ii=0, copies=0,
                status=STATUS_FAILED, error=str(exc),
            )
        except ValueError as exc:
            obs.count("experiment.failures")
            loop_span.note(outcome="failed")
            outcome = LoopOutcome(
                loop_name=ddg.name, unified_ii=unified_ii,
                clustered_ii=0, copies=0,
                status=STATUS_FAILED, error=f"invalid loop: {exc}",
            )
        except _LoopTimeout:
            obs.count("experiment.timeouts")
            loop_span.note(outcome="timeout")
            outcome = LoopOutcome(
                loop_name=ddg.name, unified_ii=unified_ii,
                clustered_ii=0, copies=0,
                status=STATUS_TIMEOUT,
                error=(f"exceeded the {timeout_seconds:g}s "
                       f"per-loop budget"),
            )
        else:
            deviation = clustered.ii - unified_ii
            loop_span.note(
                ii=clustered.ii, deviation=deviation,
                copies=clustered.copy_count,
            )
            obs.count("experiment.loops")
            report = clustered.lint_report
            certified = clustered.certified
            outcome = LoopOutcome(
                loop_name=ddg.name,
                unified_ii=unified_ii,
                clustered_ii=clustered.ii,
                copies=clustered.copy_count,
                lint_errors=len(report.errors) if report else 0,
                lint_warnings=len(report.warnings) if report else 0,
                lint_codes=tuple(report.codes()) if report else (),
                cert_errors=len(certified.issues) if certified else 0,
                cert_codes=certified.codes() if certified else (),
                exact_status=(
                    certified.exact_status if certified else ""
                ),
            )
    return outcome, baseline_seconds


# ----------------------------------------------------------------------
# Worker-side chunk execution
# ----------------------------------------------------------------------
def _run_chunk(payload: Tuple) -> Tuple:
    """Process-pool task: measure one chunk of (index, loop) pairs.

    Returns ``(records, events, meta)`` where ``records`` is a list of
    ``(suite_index, outcome, baseline_seconds)`` triples, ``events`` is
    the worker trace's serialized event list (None when the parent was
    not tracing), and ``meta`` carries the worker-side correlation
    facts — pid, trace id, the worker trace's wall-clock epoch, and the
    chunk's execute wall time — that let the parent rebase the grafted
    spans onto its own timeline and split queue wait from execution.
    """
    (items, machine, config, verify,
     timeout_seconds, known_ii, want_trace, lint_config,
     certify_config) = payload
    trace = obs.Trace() if want_trace else None
    meta = None
    if trace is not None:
        obs.install(trace)
    started = time.perf_counter()
    try:
        unified = machine.unified_equivalent()
        records = []
        for index, ddg in items:
            outcome, baseline_seconds = _measure_loop(
                ddg, machine, unified, config, verify,
                timeout_seconds, known_ii.get(ddg.name),
                lint_config, certify_config,
            )
            records.append((index, outcome, baseline_seconds))
        events = obs.trace_events(trace) if trace is not None else None
        if trace is not None:
            meta = {
                "pid": os.getpid(),
                "trace_id": trace.trace_id,
                "epoch_wall": trace.epoch_wall,
                "execute_s": time.perf_counter() - started,
            }
    finally:
        if trace is not None:
            obs.uninstall()
    return records, events, meta


def _chunked(
    pending: List[Tuple[int, Ddg]], workers: int, chunk_size: int
) -> List[List[Tuple[int, Ddg]]]:
    """Split the work list into contiguous chunks.

    Contiguity keeps the deterministic merge trivial and preserves suite
    locality; several chunks per worker smooth uneven compile times.
    """
    if chunk_size <= 0:
        chunk_size = max(1, -(-len(pending) // (workers * 4)))
    return [
        pending[start:start + chunk_size]
        for start in range(0, len(pending), chunk_size)
    ]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def run_engine_experiment(
    loops: Sequence[Ddg],
    machine: Machine,
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    label: str = "",
    baseline: Optional[UnifiedBaseline] = None,
    verify: bool = False,
    options: Optional[EngineOptions] = None,
) -> ExperimentResult:
    """Measure one clustered configuration with the parallel engine.

    Outcomes are identical to the serial reference runner; see the
    module docstring for what ``options`` adds on top.
    """
    if options is None:
        options = EngineOptions()
    if baseline is None:
        baseline = UnifiedBaseline()
    loops = list(loops)
    unified = machine.unified_equivalent()
    cache = (ResultCache(options.cache_dir)
             if options.cache_dir else None)
    result = ExperimentResult(
        label=label or f"{machine.name}/{config.name}",
        machine_name=machine.name,
        config_name=config.name,
    )
    started = time.perf_counter()
    baseline_before = baseline.elapsed_seconds
    outcomes: List[Optional[LoopOutcome]] = [None] * len(loops)
    keys: List[Optional[str]] = [None] * len(loops)
    replayed: set = set()
    try:
        with obs.span(
            "experiment", label=result.label, machine=machine.name,
            loops=len(loops), workers=options.workers,
        ):
            pending: List[Tuple[int, Ddg]] = []
            for index, ddg in enumerate(loops):
                if cache is not None:
                    keys[index] = outcome_cache_key(
                        ddg, machine, config, verify,
                        options.lint_config, options.certify_config,
                    )
                hit = (cache.load(keys[index])
                       if cache is not None and options.resume else None)
                if hit is not None:
                    obs.count("engine.cache_hits")
                    result.cache_hits += 1
                    outcomes[index] = hit
                    replayed.add(index)
                    if hit.unified_ii > 0:
                        baseline.seed(unified.name, ddg, hit.unified_ii)
                else:
                    if cache is not None and options.resume:
                        obs.count("engine.cache_misses")
                    pending.append((index, ddg))

            if options.workers >= 2 and len(pending) > 1:
                _run_parallel(
                    pending, machine, unified, config, verify,
                    options, baseline, outcomes, result,
                )
            else:
                _run_inline(
                    pending, machine, unified, config, verify,
                    options, baseline, outcomes, result,
                )

            if cache is not None:
                for index, outcome in enumerate(outcomes):
                    if outcome is not None and index not in replayed:
                        cache.store(keys[index], outcome)
    finally:
        result.baseline_seconds += (
            baseline.elapsed_seconds - baseline_before
        )
        result.elapsed_seconds = (
            time.perf_counter() - started - result.baseline_seconds
        )
    result.outcomes = [
        outcome for outcome in outcomes if outcome is not None
    ]
    if options.strict:
        _raise_on_first_failure(result)
    return result


def _run_inline(
    pending, machine, unified, config, verify, options,
    baseline, outcomes, result,
) -> None:
    """Measure the pending loops in-process, sharing the baseline cache."""
    for index, ddg in pending:
        hint = baseline.lookup(unified.name, ddg.name)
        outcome, baseline_seconds = _measure_loop(
            ddg, machine, unified, config, verify,
            options.timeout_seconds, hint, options.lint_config,
            options.certify_config,
        )
        result.baseline_seconds += baseline_seconds
        if outcome.unified_ii > 0:
            baseline.seed(unified.name, ddg, outcome.unified_ii)
        outcomes[index] = outcome


def _run_parallel(
    pending, machine, unified, config, verify, options,
    baseline, outcomes, result,
) -> None:
    """Fan the pending loops out over the warm worker pool.

    Chunks dispatch as ``engine_chunk`` tasks on ``options.pool`` (or
    the process-wide shared pool) and merge back in submission order,
    so the outcome list is bit-identical to serial no matter which
    worker finished what.  A chunk whose worker crashed past the pool's
    retry budget degrades to ``failed`` outcomes; a chunk that blew a
    pool-level deadline degrades to ``timeout`` outcomes.
    """
    known_ii = {
        ddg.name: ii
        for _, ddg in pending
        for ii in [baseline.lookup(unified.name, ddg.name)]
        if ii is not None
    }
    want_trace = obs.enabled()
    chunks = _chunked(pending, options.workers, options.chunk_size)
    payloads = [
        (chunk, machine, config, verify,
         options.timeout_seconds, known_ii, want_trace,
         options.lint_config, options.certify_config)
        for chunk in chunks
    ]
    by_name = {ddg.name: ddg for _, ddg in pending}
    parent_trace = obs.current_trace()
    lanes: dict = {}
    pool = options.pool
    if pool is None:
        pool = shared_pool(options.workers)
    else:
        pool.ensure_workers(options.workers)
    futures = [
        pool.submit("engine_chunk", payload) for payload in payloads
    ]
    for chunk, future in zip(chunks, futures):
        try:
            task = future.result()
        except WorkerCrashError as exc:
            obs.count("engine.chunk_crashes")
            for index, ddg in chunk:
                obs.count("experiment.failures")
                outcomes[index] = LoopOutcome(
                    loop_name=ddg.name,
                    unified_ii=known_ii.get(ddg.name, 0),
                    clustered_ii=0, copies=0,
                    status=STATUS_FAILED,
                    error=f"worker crashed: {exc}",
                )
            continue
        except DeadlineExceeded as exc:
            obs.count("engine.chunk_deadlines")
            for index, ddg in chunk:
                obs.count("experiment.timeouts")
                outcomes[index] = LoopOutcome(
                    loop_name=ddg.name,
                    unified_ii=known_ii.get(ddg.name, 0),
                    clustered_ii=0, copies=0,
                    status=STATUS_TIMEOUT, error=str(exc),
                )
            continue
        records, events, meta = task.value
        for index, outcome, baseline_seconds in records:
            result.baseline_seconds += baseline_seconds
            if outcome.unified_ii > 0:
                baseline.seed(
                    unified.name, by_name[outcome.loop_name],
                    outcome.unified_ii,
                )
            outcomes[index] = outcome
        if events and parent_trace is not None:
            worker_trace = obs.trace_from_events(events)
            # Stable small lane ids, one per worker process, in order
            # of first completion; the host span's attrs carry the
            # queue-wait/execute split so the timeline and Chrome
            # export can reconstruct per-worker utilization
            # (docs/EXPERIMENT_ENGINE.md).
            if meta is not None:
                worker_trace.trace_id = meta["trace_id"]
                worker_trace.epoch_wall = meta["epoch_wall"]
            lane = lanes.setdefault(task.pid, len(lanes))
            parent_trace.graft(
                worker_trace, name="worker",
                chunk_loops=len(records), lane=lane, pid=task.pid,
                queue_wait_s=round(task.queue_wait_s, 6),
                execute_s=round(task.execute_s, 6),
            )


def _raise_on_first_failure(result: ExperimentResult) -> None:
    """Strict mode: mirror the serial runner's abort semantics.

    The raised :class:`ExperimentError` carries a partial result holding
    the outcomes *before* the first failure in suite order — exactly
    what the serial strict path would have accumulated.
    """
    for position, outcome in enumerate(result.outcomes):
        if outcome.ok:
            continue
        partial = ExperimentResult(
            label=result.label,
            machine_name=result.machine_name,
            config_name=result.config_name,
            outcomes=list(result.outcomes[:position]),
            elapsed_seconds=result.elapsed_seconds,
            baseline_seconds=result.baseline_seconds,
            cache_hits=result.cache_hits,
        )
        raise ExperimentError(
            f"loop {outcome.loop_name!r} failed: {outcome.error}",
            partial_result=partial,
            loop_name=outcome.loop_name,
        )
