"""Cycle-accurate execution of a clustered modulo schedule.

The simulator models the hardware the paper describes:

* one register file per cluster — an operation can only read operands
  that have physically arrived in *its own* cluster's file;
* fully pipelined function units: an operation issues in one cycle and
  its result becomes readable ``latency`` cycles later, in its own
  cluster's file;
* copies: issue on the source cluster, read the transported value from
  the source file, and deliver it to every target cluster's file one
  cycle later (bus broadcast writes all targets in the same cycle);
* per-cycle capacity of every machine resource (issue slots, read/write
  ports, buses, links) is checked on the *absolute* timeline, prologue
  and steady state alike.

Overlapped iterations all run: iteration ``i`` of operation ``n`` issues
at ``start[n] + i * II``.  The produced digests are then compared against
:func:`repro.sim.reference.reference_execute` on the original loop — a
full end-to-end proof that the assignment's copies really move every
value where it is consumed, with correct iteration indexing, and that
the schedule never oversubscribes the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ddg.graph import Ddg
from ..scheduling.schedule import Schedule
from .reference import OPCODE_INDEX, reference_execute, value_inputs
from .values import combine, live_in, source_value


@dataclass
class SimViolation:
    """One problem observed during simulated execution."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


@dataclass
class SimReport:
    """Outcome of one simulated run."""

    n_iterations: int
    cycles: int
    violations: List[SimViolation] = field(default_factory=list)
    mismatches: int = 0
    checked_values: int = 0

    @property
    def ok(self) -> bool:
        """True when execution was clean and every value matched."""
        return not self.violations and self.mismatches == 0


def simulate_schedule(
    original: Ddg,
    schedule: Schedule,
    n_iterations: int = 6,
    check_resources: bool = True,
) -> SimReport:
    """Execute ``schedule`` for ``n_iterations`` overlapped iterations
    and validate against the sequential reference on ``original``."""
    if n_iterations < 1:
        raise ValueError("need at least one iteration")
    annotated = schedule.annotated
    ddg = annotated.ddg
    ii = schedule.ii
    machine = annotated.machine

    inputs_of = {n: value_inputs(ddg, n) for n in ddg.node_ids}
    max_distance = max((e.distance for e in ddg.edges), default=0)

    # Per-cluster register files: (node, iteration) -> (ready_cycle, digest)
    regfile: Dict[int, Dict[Tuple[int, int], Tuple[int, int]]] = {
        c: {} for c in machine.cluster_indices
    }

    def seed_live_ins() -> None:
        """Values from before the loop, present everywhere they would be."""
        for node in ddg.nodes:
            if not node.produces_value:
                continue
            if node.is_copy:
                digest_source = annotated.copy_value_of[node.node_id]
            else:
                digest_source = node.node_id
            homes = [annotated.cluster_of[node.node_id]]
            if node.is_copy:
                homes.extend(annotated.copy_targets[node.node_id])
            for iteration in range(-max_distance, 0):
                digest = live_in(digest_source, iteration)
                for cluster in homes:
                    regfile[cluster][(node.node_id, iteration)] = (
                        0, digest,
                    )

    seed_live_ins()

    report = SimReport(n_iterations=n_iterations, cycles=0)
    capacities = machine.resource_capacities()
    usage: Dict[Tuple[object, int], int] = {}

    # Issue events ordered by absolute cycle.
    events: List[Tuple[int, int, int]] = []  # (cycle, node_id, iteration)
    for node_id in ddg.node_ids:
        for iteration in range(n_iterations):
            events.append(
                (schedule.start[node_id] + iteration * ii, node_id, iteration)
            )
    events.sort()
    report.cycles = events[-1][0] + 1 if events else 0

    for cycle, node_id, iteration in events:
        node = ddg.node(node_id)
        home = annotated.cluster_of[node_id]

        # Read operands from the home cluster's register file.
        operand_digests = []
        missing = False
        for producer, distance in inputs_of[node_id]:
            key = (producer, iteration - distance)
            entry = regfile[home].get(key)
            if entry is None:
                report.violations.append(SimViolation(
                    kind="dataflow",
                    detail=(
                        f"{node} iter {iteration} on C{home}: operand "
                        f"{key} never arrives in this register file"
                    ),
                ))
                missing = True
                continue
            ready, digest = entry
            if ready > cycle:
                report.violations.append(SimViolation(
                    kind="timing",
                    detail=(
                        f"{node} iter {iteration} reads {key} at cycle "
                        f"{cycle} but it is ready only at {ready}"
                    ),
                ))
                missing = True
                continue
            operand_digests.append(digest)
        if missing:
            continue

        # Compute and write back.
        if node.is_copy:
            if len(operand_digests) != 1:
                report.violations.append(SimViolation(
                    kind="structure",
                    detail=f"copy {node_id} has {len(operand_digests)} inputs",
                ))
                continue
            digest = operand_digests[0]
            destinations = list(annotated.copy_targets[node_id])
        else:
            opcode_index = OPCODE_INDEX[node.opcode]
            if operand_digests:
                digest = combine(
                    node_id, opcode_index, tuple(operand_digests)
                )
            else:
                digest = source_value(node_id, opcode_index, iteration)
            destinations = [home]
        if node.produces_value:
            ready = cycle + node.latency
            for cluster in destinations:
                regfile[cluster][(node_id, iteration)] = (ready, digest)

        # Account per-cycle resource usage.
        if check_resources:
            for key in annotated.resources_of(node_id):
                usage[(key, cycle)] = usage.get((key, cycle), 0) + 1

    if check_resources:
        for (key, cycle), used in sorted(usage.items(), key=str):
            if used > capacities.get(key, 0):
                report.violations.append(SimViolation(
                    kind="resource",
                    detail=(
                        f"resource {key!r} used {used}x in cycle {cycle} "
                        f"(capacity {capacities.get(key, 0)})"
                    ),
                ))

    # Compare every original operation's digests with the reference.
    reference = reference_execute(original, n_iterations)
    for node in original.nodes:
        home = annotated.cluster_of[node.node_id]
        for iteration in range(n_iterations):
            report.checked_values += 1
            expected = reference[(node.node_id, iteration)]
            entry = regfile[home].get((node.node_id, iteration))
            if node.produces_value:
                if entry is None or entry[1] != expected:
                    report.mismatches += 1
            # Non-value ops (stores, branches) were validated implicitly:
            # their operand reads either succeeded with matching upstream
            # digests or raised dataflow violations above.
    return report


def assert_executes_correctly(
    original: Ddg,
    schedule: Schedule,
    n_iterations: int = 6,
) -> None:
    """Raise :class:`AssertionError` when simulated execution deviates
    from the sequential reference."""
    report = simulate_schedule(original, schedule, n_iterations)
    if not report.ok:
        problems = "\n".join(str(v) for v in report.violations[:20])
        raise AssertionError(
            f"simulated execution failed: {report.mismatches} value "
            f"mismatches of {report.checked_values}, "
            f"{len(report.violations)} violations\n{problems}"
        )
