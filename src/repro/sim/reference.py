"""Sequential reference execution of a loop DDG.

Executes ``n_iterations`` of the loop the way a scalar processor would:
iteration by iteration, operations in dataflow order within an
iteration, loop-carried operands taken from ``distance`` iterations ago
(live-in digests for iterations before the first).  The result — a
digest per (node, iteration) — is the ground truth the machine simulator
is compared against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ddg.graph import Ddg
from ..ddg.opcodes import Opcode
from .values import combine, live_in, source_value

OPCODE_INDEX = {opcode: index for index, opcode in enumerate(Opcode)}


def _intra_iteration_topo_order(ddg: Ddg) -> List[int]:
    """Topological order w.r.t. distance-0 edges (acyclic for any
    schedulable loop; a zero-distance cycle is malformed input)."""
    indegree = {node_id: 0 for node_id in ddg.node_ids}
    for edge in ddg.edges:
        if edge.distance == 0:
            indegree[edge.dst] += 1
    ready = [n for n, d in indegree.items() if d == 0]
    order: List[int] = []
    while ready:
        node_id = ready.pop()
        order.append(node_id)
        for edge in ddg.out_edges(node_id):
            if edge.distance == 0:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
    if len(order) != len(ddg):
        raise ValueError("zero-distance dependence cycle in loop body")
    return order


def value_inputs(ddg: Ddg, node_id: int) -> List[Tuple[int, int]]:
    """The data operands of a node: ``(producer, distance)`` per value
    in-edge, in edge insertion order (ordering edges carry no data)."""
    inputs = []
    for edge in ddg.in_edges(node_id):
        if ddg.node(edge.src).produces_value:
            inputs.append((edge.src, edge.distance))
    return inputs


def reference_execute(
    ddg: Ddg, n_iterations: int
) -> Dict[Tuple[int, int], int]:
    """Digest of every (node, iteration) under sequential execution."""
    if n_iterations < 1:
        raise ValueError("need at least one iteration")
    order = _intra_iteration_topo_order(ddg)
    inputs_of = {n: value_inputs(ddg, n) for n in ddg.node_ids}
    values: Dict[Tuple[int, int], int] = {}
    for iteration in range(n_iterations):
        for node_id in order:
            operand_digests = []
            for producer, distance in inputs_of[node_id]:
                src_iter = iteration - distance
                if src_iter < 0:
                    operand_digests.append(live_in(producer, src_iter))
                else:
                    operand_digests.append(values[(producer, src_iter)])
            opcode_index = OPCODE_INDEX[ddg.node(node_id).opcode]
            if operand_digests:
                digest = combine(
                    node_id, opcode_index, tuple(operand_digests)
                )
            else:
                digest = source_value(node_id, opcode_index, iteration)
            values[(node_id, iteration)] = digest
    return values
