"""Symbolic value algebra for execution-based schedule validation.

Every operation's result is a deterministic function of its opcode, node
identity and input values, so two executions computing "the same thing"
produce bit-identical values and any dataflow mix-up (wrong iteration,
wrong producer, value read from a register file it never reached)
surfaces as a mismatch.

Values are compact 64-bit digests: ``combine`` folds the inputs with the
producing node and the opcode; live-in values (operands whose producing
iteration precedes the first simulated one) are derived from
``(producer node, iteration)`` so the reference and the machine
simulator agree on them by construction.  Copies are transparent — they
transport their input digest unchanged, exactly like hardware.
"""

from __future__ import annotations

from typing import Iterable, Tuple

_MASK = (1 << 64) - 1
_PRIME = 1099511628211  # FNV-64 prime


def _fnv(parts: Iterable[int]) -> int:
    digest = 14695981039346656037
    for part in parts:
        digest ^= part & _MASK
        digest = (digest * _PRIME) & _MASK
    return digest


def live_in(node_id: int, iteration: int) -> int:
    """Digest of a value produced before the first simulated iteration.

    ``iteration`` is negative (or identifies the pre-loop definition).
    """
    return _fnv((0xBEEF, node_id, iteration & _MASK))


def combine(node_id: int, opcode_index: int, inputs: Tuple[int, ...]) -> int:
    """Digest of an operation's result given its input digests.

    Inputs are order-sensitive: a DDG consumer sees its in-edges in
    insertion order, which both executions traverse identically.
    """
    return _fnv((0xFACE, node_id, opcode_index, len(inputs), *inputs))


def source_value(node_id: int, opcode_index: int, iteration: int) -> int:
    """Digest of an operand-less operation (e.g. a streaming load).

    Source operations model ``a[i]``-style streams: their value differs
    every iteration, so downstream digests are iteration-specific even
    in recurrence-free loops.
    """
    return _fnv((0xD00D, node_id, opcode_index, iteration & _MASK))
