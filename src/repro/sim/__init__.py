"""Execution-based validation: reference interpreter + machine simulator."""

from .machine import (
    SimReport,
    SimViolation,
    assert_executes_correctly,
    simulate_schedule,
)
from .reference import reference_execute, value_inputs
from .values import combine, live_in

__all__ = [
    "SimReport",
    "SimViolation",
    "assert_executes_correctly",
    "combine",
    "live_in",
    "reference_execute",
    "simulate_schedule",
    "value_inputs",
]
