"""Modulo reservation tables: counting pools and time-indexed tables."""

from .pool import PoolOverflowError, ResourcePools
from .table import ModuloReservationTable

__all__ = ["ModuloReservationTable", "PoolOverflowError", "ResourcePools"]
