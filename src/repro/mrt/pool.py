"""Counting modulo reservation tables for the assignment phase.

During cluster assignment operations are not yet placed in specific
cycles; what matters is whether the modulo-scheduled kernel of length II
*can* hold them.  Since every operation occupies exactly one slot of each
resource it uses (units are fully pipelined, copies take one cycle), an
MRT of length II with ``k`` units per cycle is, for assignment purposes, a
pool of ``k * II`` slots (this is exactly how the paper's Figures 7–8
treat the MRTs: as boxes filled by ops, without cycle positions).

:class:`ResourcePools` tracks one such pool per machine resource key and
supports transactional use: the assignment algorithm snapshots the pools,
tentatively applies an assignment, records the outcome, and rolls back.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..machine.machine import Machine, ResourceKey


class PoolOverflowError(RuntimeError):
    """Raised when a reservation would exceed a pool's capacity."""

    def __init__(self, key: ResourceKey, capacity: int) -> None:
        super().__init__(f"resource pool {key!r} exhausted (capacity {capacity})")
        self.key = key
        self.capacity = capacity


class ResourcePools:
    """Per-resource slot counters of an assignment-phase MRT of length II."""

    def __init__(self, machine: Machine, ii: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.machine = machine
        self.ii = ii
        self._capacity: Dict[ResourceKey, int] = {
            key: per_cycle * ii
            for key, per_cycle in machine.resource_capacities().items()
        }
        self._used: Dict[ResourceKey, int] = {key: 0 for key in self._capacity}
        # Per-cluster key lists, precomputed once: the selection heuristic
        # calls the cluster-level summaries thousands of times per II and
        # the key-shape scans are invariant.
        self._issue_keys: Dict[int, List[ResourceKey]] = {}
        self._channel_keys: Dict[int, List[ResourceKey]] = {}
        for cluster_index in machine.cluster_indices:
            self._issue_keys[cluster_index] = [
                key
                for key in self._capacity
                if (
                    isinstance(key, tuple)
                    and len(key) == 3
                    and key[0] == "issue"
                    and key[1] == cluster_index
                )
            ]
            channel_keys = []
            for key in machine.interconnect.channel_resources():
                if key == "bus":
                    channel_keys.append(key)
                elif (
                    isinstance(key, tuple)
                    and key[0] == "link"
                    and cluster_index in key[1:]
                ):
                    channel_keys.append(key)
            self._channel_keys[cluster_index] = channel_keys

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def capacity(self, key: ResourceKey) -> int:
        """Total slots of ``key`` over the whole kernel (per-cycle × II)."""
        return self._capacity[key]

    def used(self, key: ResourceKey) -> int:
        """Slots of ``key`` currently reserved."""
        return self._used[key]

    def free(self, key: ResourceKey) -> int:
        """Slots of ``key`` still available."""
        return self._capacity[key] - self._used[key]

    def keys(self) -> List[ResourceKey]:
        """All pool keys."""
        return list(self._capacity)

    def can_reserve(self, keys: Iterable[ResourceKey]) -> bool:
        """True when one slot of each key in ``keys`` is available.

        ``keys`` may repeat a key; repetitions demand multiple slots.
        """
        used = self._used
        capacity = self._capacity
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        for key, count in demand.items():
            if used[key] + count > capacity[key]:
                return False
        return True

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(self, keys: Iterable[ResourceKey]) -> None:
        """Reserve one slot per key; raises and leaves state unchanged on
        overflow."""
        key_list = list(keys)
        if not self.can_reserve(key_list):
            for key in key_list:
                if self._used[key] >= self._capacity[key]:
                    raise PoolOverflowError(key, self._capacity[key])
            # Overflow came from repetition within key_list.
            demand: Dict[ResourceKey, int] = {}
            for key in key_list:
                demand[key] = demand.get(key, 0) + 1
            for key, count in demand.items():
                if self._used[key] + count > self._capacity[key]:
                    raise PoolOverflowError(key, self._capacity[key])
        for key in key_list:
            self._used[key] += 1

    def release(self, keys: Iterable[ResourceKey]) -> None:
        """Release one slot per key (must have been reserved)."""
        for key in keys:
            if self._used[key] <= 0:
                raise ValueError(f"releasing unreserved resource {key!r}")
            self._used[key] -= 1

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[ResourceKey, int]:
        """Snapshot the current usage counters."""
        return dict(self._used)

    def restore(self, snapshot: Dict[ResourceKey, int]) -> None:
        """Roll usage counters back to ``snapshot``."""
        self._used = dict(snapshot)

    # ------------------------------------------------------------------
    # Cluster-level summaries used by the selection heuristic
    # ------------------------------------------------------------------
    def free_issue_slots(self, cluster_index: int) -> int:
        """Free function-unit slots on one cluster (all classes pooled)."""
        capacity = self._capacity
        used = self._used
        return sum(
            capacity[key] - used[key]
            for key in self._issue_keys[cluster_index]
        )

    def free_cluster_slots(self, cluster_index: int) -> int:
        """Free slots of every pool local to one cluster (issue + ports).

        This is the "free resources on the cluster" quantity maximized by
        the last selection of the paper's Figure 10.
        """
        total = self.free_issue_slots(cluster_index)
        if not self.machine.is_unified:
            total += self.free(self.machine.read_port_key(cluster_index))
            total += self.free(self.machine.write_port_key(cluster_index))
        return total

    def free_channel_slots_from(self, cluster_index: int) -> int:
        """Free channel slots usable by copies leaving ``cluster_index``.

        For buses this is the free bus slots; for point-to-point fabrics it
        is the sum of free slots on links incident to the cluster.
        """
        capacity = self._capacity
        used = self._used
        return sum(
            capacity[key] - used[key]
            for key in self._channel_keys[cluster_index]
        )

    def max_reservable_copies(self, cluster_index: int) -> int:
        """MRC_C — room for additional copies out of cluster C.

        A copy out of C consumes one of C's read ports and one channel
        slot, so the room is the smaller of the two (target-side write
        ports are not charged: the targets are unknown at prediction
        time, exactly as in the paper's definition of MRC).
        """
        if self.machine.is_unified:
            return 0
        read_free = self.free(self.machine.read_port_key(cluster_index))
        return min(read_free, self.free_channel_slots_from(cluster_index))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        used = sum(self._used.values())
        cap = sum(self._capacity.values())
        return f"ResourcePools(ii={self.ii}, used={used}/{cap})"
