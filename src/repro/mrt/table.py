"""Time-indexed modulo reservation table for the scheduling phase.

The scheduler places operation ``op`` at absolute cycle ``t``; in the
software-pipelined kernel it occupies its resources in row ``t mod II``.
The table tracks, per resource key and row, which operations hold slots,
which lets the iterative scheduler both test availability and identify the
holders it must displace when forcing a placement (Rau's iterative modulo
scheduling).

Occupancy is maintained twice, on purpose:

* per-(key, row) integer counters (``_usage``: one row-indexed array per
  key), which make availability probes a few integer compares — the
  scheduler probes up to II cycles per placement, so this is the hottest
  query in the pipeline;
* per-(key, row) holder lists (``_slots``), consulted only by
  :meth:`conflicting_ops` and :meth:`remove` to identify displacement
  victims.

Callers on the hot path pre-compile each operation's resource demand once
per scheduling attempt with :meth:`compile_demand` and probe with
:meth:`probe`; :meth:`available` keeps the one-shot API.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ..machine.machine import Machine, ResourceKey

OpId = Hashable

#: One key's pre-resolved probe inputs: (row-usage array, capacity, slots
#: demanded).  See :meth:`ModuloReservationTable.compile_demand`.
DemandProfile = List[Tuple[List[int], int, int]]

#: Debug flag: force full availability re-validation inside every
#: ``place`` call even when the caller opted out (``check=False``).
_FORCE_VALIDATE = bool(os.environ.get("REPRO_MRT_VALIDATE"))


class ModuloReservationTable:
    """Per-cycle-row resource occupancy of a kernel of length II."""

    def __init__(self, machine: Machine, ii: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.machine = machine
        self.ii = ii
        self._capacity: Dict[ResourceKey, int] = machine.resource_capacities()
        # (key, row) -> list of op ids holding a slot there.  Entries are
        # removed as soon as their list empties.
        self._slots: Dict[Tuple[ResourceKey, int], List[OpId]] = {}
        # key -> per-row occupancy counters (len == II).
        self._usage: Dict[ResourceKey, List[int]] = {
            key: [0] * ii for key in self._capacity
        }
        # op id -> list of (key, row) it holds.
        self._held: Dict[OpId, List[Tuple[ResourceKey, int]]] = {}

    def row(self, cycle: int) -> int:
        """Kernel row of an absolute cycle."""
        return cycle % self.ii

    def _occupancy(self, key: ResourceKey, row: int) -> List[OpId]:
        return self._slots.get((key, row), [])

    def compile_demand(self, keys: Iterable[ResourceKey]) -> DemandProfile:
        """Pre-resolve a resource demand multiset for repeated probing.

        Aggregates duplicate keys and binds each to its usage array and
        capacity, so :meth:`probe` touches no dictionaries.  The profile
        stays valid for this table's lifetime (usage arrays are updated
        in place by :meth:`place`/:meth:`remove`).
        """
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        profile: DemandProfile = []
        for key, count in demand.items():
            capacity = self._capacity.get(key)
            if capacity is None:
                raise KeyError(f"unknown resource key {key!r}")
            profile.append((self._usage[key], capacity, count))
        return profile

    def probe(self, profile: DemandProfile, cycle: int) -> bool:
        """True when ``profile``'s demand fits in ``cycle``'s row."""
        row = cycle % self.ii
        for usage, capacity, count in profile:
            if usage[row] + count > capacity:
                return False
        return True

    def available(
        self, keys: Iterable[ResourceKey], cycle: int
    ) -> bool:
        """True when one slot of every key is free in ``cycle``'s row."""
        return self.probe(self.compile_demand(keys), cycle)

    def conflicting_ops(
        self, keys: Iterable[ResourceKey], cycle: int
    ) -> Set[OpId]:
        """Operations currently holding the slots ``keys`` needs at
        ``cycle``.

        Used by forced placement: displacing all of them guarantees the
        reservation will fit (each key's full row occupancy is returned
        when the row is saturated for that key).
        """
        row = self.row(cycle)
        conflicting: Set[OpId] = set()
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        for key, count in demand.items():
            holders = self._occupancy(key, row)
            if len(holders) + count > self._capacity[key]:
                conflicting.update(holders)
        return conflicting

    def place(
        self,
        op_id: OpId,
        keys: Iterable[ResourceKey],
        cycle: int,
        check: bool = True,
    ) -> None:
        """Reserve one slot of each key at ``cycle`` for ``op_id``.

        ``check=False`` skips the availability re-validation for callers
        that already probed (the scheduler displaces every conflicting op
        before placing, so the fit is guaranteed); set the
        ``REPRO_MRT_VALIDATE`` environment variable to force validation
        everywhere when debugging.  The independent schedule validator
        (:mod:`repro.scheduling.verify`) re-checks capacities regardless.
        """
        if op_id in self._held:
            raise ValueError(f"operation {op_id!r} is already placed")
        key_list = list(keys)
        if (check or _FORCE_VALIDATE) and not self.available(
            key_list, cycle
        ):
            raise RuntimeError(
                f"resources for {op_id!r} unavailable at cycle {cycle}"
            )
        row = self.row(cycle)
        held = []
        for key in key_list:
            self._slots.setdefault((key, row), []).append(op_id)
            self._usage[key][row] += 1
            held.append((key, row))
        self._held[op_id] = held

    def remove(self, op_id: OpId) -> None:
        """Release every slot held by ``op_id``."""
        held = self._held.pop(op_id, None)
        if held is None:
            raise ValueError(f"operation {op_id!r} is not placed")
        for key, row in held:
            holders = self._slots[(key, row)]
            holders.remove(op_id)
            if not holders:
                del self._slots[(key, row)]
            self._usage[key][row] -= 1

    def is_placed(self, op_id: OpId) -> bool:
        """True when ``op_id`` currently holds slots."""
        return op_id in self._held

    def placed_ops(self) -> List[OpId]:
        """All operations currently holding slots."""
        return list(self._held)

    def utilization(self) -> Dict[ResourceKey, float]:
        """Fraction of each resource's kernel slots in use."""
        return {
            key: sum(self._usage[key]) / (self._capacity[key] * self.ii)
            for key in self._capacity
            if self._capacity[key] > 0
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModuloReservationTable(ii={self.ii}, "
            f"placed={len(self._held)})"
        )
