"""Time-indexed modulo reservation table for the scheduling phase.

The scheduler places operation ``op`` at absolute cycle ``t``; in the
software-pipelined kernel it occupies its resources in row ``t mod II``.
The table tracks, per resource key and row, which operations hold slots,
which lets the iterative scheduler both test availability and identify the
holders it must displace when forcing a placement (Rau's iterative modulo
scheduling).

Occupancy is maintained twice, on purpose:

* per-(key, row) integer counters (``_usage``: one row-indexed array per
  key), which make availability probes a few integer compares — the
  scheduler probes up to II cycles per placement, so this is the hottest
  query in the pipeline;
* per-(key, row) holder lists (``_slots``), consulted only by
  :meth:`conflicting_ops` and :meth:`remove` to identify displacement
  victims.

Callers on the hot path pre-compile each operation's resource demand once
per scheduling attempt with :meth:`compile_demand` and probe with
:meth:`probe`; :meth:`available` keeps the one-shot API.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ..machine.machine import Machine, ResourceKey

OpId = Hashable

#: One key's pre-resolved probe inputs: (row-usage array, capacity, slots
#: demanded).  See :meth:`ModuloReservationTable.compile_demand`.
DemandProfile = List[Tuple[List[int], int, int]]

#: Debug flag: force full availability re-validation inside every
#: ``place`` call even when the caller opted out (``check=False``).
_FORCE_VALIDATE = bool(os.environ.get("REPRO_MRT_VALIDATE"))


class ModuloReservationTable:
    """Per-cycle-row resource occupancy of a kernel of length II."""

    def __init__(self, machine: Machine, ii: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.machine = machine
        self.ii = ii
        self._capacity: Dict[ResourceKey, int] = machine.resource_capacities()
        # (key, row) -> list of op ids holding a slot there.  Entries are
        # removed as soon as their list empties.
        self._slots: Dict[Tuple[ResourceKey, int], List[OpId]] = {}
        # key -> per-row occupancy counters (len == II).
        self._usage: Dict[ResourceKey, List[int]] = {
            key: [0] * ii for key in self._capacity
        }
        # op id -> list of (key, row) it holds.
        self._held: Dict[OpId, List[Tuple[ResourceKey, int]]] = {}

    def row(self, cycle: int) -> int:
        """Kernel row of an absolute cycle."""
        return cycle % self.ii

    def _occupancy(self, key: ResourceKey, row: int) -> List[OpId]:
        return self._slots.get((key, row), [])

    def compile_demand(self, keys: Iterable[ResourceKey]) -> DemandProfile:
        """Pre-resolve a resource demand multiset for repeated probing.

        Aggregates duplicate keys and binds each to its usage array and
        capacity, so :meth:`probe` touches no dictionaries.  The profile
        stays valid for this table's lifetime (usage arrays are updated
        in place by :meth:`place`/:meth:`remove`).
        """
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        profile: DemandProfile = []
        for key, count in demand.items():
            capacity = self._capacity.get(key)
            if capacity is None:
                raise KeyError(f"unknown resource key {key!r}")
            profile.append((self._usage[key], capacity, count))
        return profile

    def probe(self, profile: DemandProfile, cycle: int) -> bool:
        """True when ``profile``'s demand fits in ``cycle``'s row."""
        row = cycle % self.ii
        for usage, capacity, count in profile:
            if usage[row] + count > capacity:
                return False
        return True

    def available(
        self, keys: Iterable[ResourceKey], cycle: int
    ) -> bool:
        """True when one slot of every key is free in ``cycle``'s row."""
        return self.probe(self.compile_demand(keys), cycle)

    def conflicting_ops(
        self, keys: Iterable[ResourceKey], cycle: int
    ) -> Set[OpId]:
        """Operations currently holding the slots ``keys`` needs at
        ``cycle``.

        Used by forced placement: displacing all of them guarantees the
        reservation will fit (each key's full row occupancy is returned
        when the row is saturated for that key).
        """
        row = self.row(cycle)
        conflicting: Set[OpId] = set()
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        for key, count in demand.items():
            holders = self._occupancy(key, row)
            if len(holders) + count > self._capacity[key]:
                conflicting.update(holders)
        return conflicting

    def place(
        self,
        op_id: OpId,
        keys: Iterable[ResourceKey],
        cycle: int,
        check: bool = True,
    ) -> None:
        """Reserve one slot of each key at ``cycle`` for ``op_id``.

        ``check=False`` skips the availability re-validation for callers
        that already probed (the scheduler displaces every conflicting op
        before placing, so the fit is guaranteed); set the
        ``REPRO_MRT_VALIDATE`` environment variable to force validation
        everywhere when debugging.  The independent schedule validator
        (:mod:`repro.scheduling.verify`) re-checks capacities regardless.
        """
        if op_id in self._held:
            raise ValueError(f"operation {op_id!r} is already placed")
        key_list = keys if type(keys) is list else list(keys)
        if (check or _FORCE_VALIDATE) and not self.available(
            key_list, cycle
        ):
            raise RuntimeError(
                f"resources for {op_id!r} unavailable at cycle {cycle}"
            )
        row = cycle % self.ii
        held = []
        slots = self._slots
        usage = self._usage
        for key in key_list:
            slot = (key, row)
            slots.setdefault(slot, []).append(op_id)
            usage[key][row] += 1
            held.append(slot)
        self._held[op_id] = held

    def remove(self, op_id: OpId) -> None:
        """Release every slot held by ``op_id``."""
        held = self._held.pop(op_id, None)
        if held is None:
            raise ValueError(f"operation {op_id!r} is not placed")
        for key, row in held:
            holders = self._slots[(key, row)]
            holders.remove(op_id)
            if not holders:
                del self._slots[(key, row)]
            self._usage[key][row] -= 1

    def is_placed(self, op_id: OpId) -> bool:
        """True when ``op_id`` currently holds slots."""
        return op_id in self._held

    def placed_ops(self) -> List[OpId]:
        """All operations currently holding slots."""
        return list(self._held)

    def oversubscriptions(
        self,
    ) -> List[Tuple[ResourceKey, int, int, int]]:
        """Rows whose counter-based occupancy exceeds capacity.

        Returns ``(key, row, used, capacity)`` tuples sorted by key
        string then row.  Normal scheduling never oversubscribes (every
        ``place`` probes first); the independent validator rebuilds a
        table with ``check=False`` placements and reads this off.
        """
        over: List[Tuple[ResourceKey, int, int, int]] = []
        for key, usage in self._usage.items():
            capacity = self._capacity[key]
            if max(usage) <= capacity:
                continue
            for row, used in enumerate(usage):
                if used > capacity:
                    over.append((key, row, used, capacity))
        over.sort(key=lambda item: (str(item[0]), item[1]))
        return over

    def consistency_errors(self) -> List[str]:
        """Disagreements between the two occupancy books.

        Occupancy is tracked twice — integer counters (``_usage``, the
        probe fast path) and holder lists (``_slots``, the
        displacement/validation path that ``REPRO_MRT_VALIDATE``
        re-walks).  They must agree at all times; a divergence means a
        placement/removal bug.  Returns human-readable descriptions,
        empty when consistent.
        """
        # Fast clean path: compare the books without sorting or string
        # building (the lint gate runs this on every compiled loop, and
        # consistent tables are the overwhelmingly common case).  Two
        # checks suffice: (a) every holder list matches its counter —
        # this catches any divergence located where a holder list
        # exists; (b) the books' totals agree — a counter inflated
        # where *no* holder list exists leaves the counter total ahead,
        # and any cancelling holder-heavy spot is already caught by (a).
        slots = self._slots
        usage_map = self._usage
        clean = all(
            key in usage_map and usage_map[key][row] == len(holders)
            for (key, row), holders in slots.items()
        ) and sum(
            sum(usage) for usage in usage_map.values()
        ) == sum(len(holders) for holders in slots.values())
        if clean:
            return []
        problems: List[str] = []
        for key, usage in sorted(self._usage.items(), key=str):
            for row, counted in enumerate(usage):
                holders = len(self._slots.get((key, row), []))
                if counted != holders:
                    problems.append(
                        f"resource {key!r} row {row}: counter says "
                        f"{counted}, holder list says {holders}"
                    )
        for (key, row), holders in sorted(
            self._slots.items(), key=str
        ):
            if key not in self._usage:
                problems.append(
                    f"holder list for unknown resource {key!r} "
                    f"row {row} ({len(holders)} holder(s))"
                )
        return problems

    def utilization(self) -> Dict[ResourceKey, float]:
        """Fraction of each resource's kernel slots in use."""
        return {
            key: sum(self._usage[key]) / (self._capacity[key] * self.ii)
            for key in self._capacity
            if self._capacity[key] > 0
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModuloReservationTable(ii={self.ii}, "
            f"placed={len(self._held)})"
        )
