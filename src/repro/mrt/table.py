"""Time-indexed modulo reservation table for the scheduling phase.

The scheduler places operation ``op`` at absolute cycle ``t``; in the
software-pipelined kernel it occupies its resources in row ``t mod II``.
The table tracks, per resource key and row, which operations hold slots,
which lets the iterative scheduler both test availability and identify the
holders it must displace when forcing a placement (Rau's iterative modulo
scheduling).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ..machine.machine import Machine, ResourceKey

OpId = Hashable


class ModuloReservationTable:
    """Per-cycle-row resource occupancy of a kernel of length II."""

    def __init__(self, machine: Machine, ii: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.machine = machine
        self.ii = ii
        self._capacity: Dict[ResourceKey, int] = machine.resource_capacities()
        # (key, row) -> list of op ids holding a slot there.
        self._slots: Dict[Tuple[ResourceKey, int], List[OpId]] = {}
        # op id -> list of (key, row) it holds.
        self._held: Dict[OpId, List[Tuple[ResourceKey, int]]] = {}

    def row(self, cycle: int) -> int:
        """Kernel row of an absolute cycle."""
        return cycle % self.ii

    def _occupancy(self, key: ResourceKey, row: int) -> List[OpId]:
        return self._slots.get((key, row), [])

    def available(
        self, keys: Iterable[ResourceKey], cycle: int
    ) -> bool:
        """True when one slot of every key is free in ``cycle``'s row."""
        row = self.row(cycle)
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        for key, count in demand.items():
            capacity = self._capacity.get(key)
            if capacity is None:
                raise KeyError(f"unknown resource key {key!r}")
            if len(self._occupancy(key, row)) + count > capacity:
                return False
        return True

    def conflicting_ops(
        self, keys: Iterable[ResourceKey], cycle: int
    ) -> Set[OpId]:
        """Operations currently holding the slots ``keys`` needs at
        ``cycle``.

        Used by forced placement: displacing all of them guarantees the
        reservation will fit (each key's full row occupancy is returned
        when the row is saturated for that key).
        """
        row = self.row(cycle)
        conflicting: Set[OpId] = set()
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        for key, count in demand.items():
            holders = self._occupancy(key, row)
            if len(holders) + count > self._capacity[key]:
                conflicting.update(holders)
        return conflicting

    def place(
        self, op_id: OpId, keys: Iterable[ResourceKey], cycle: int
    ) -> None:
        """Reserve one slot of each key at ``cycle`` for ``op_id``."""
        if op_id in self._held:
            raise ValueError(f"operation {op_id!r} is already placed")
        key_list = list(keys)
        if not self.available(key_list, cycle):
            raise RuntimeError(
                f"resources for {op_id!r} unavailable at cycle {cycle}"
            )
        row = self.row(cycle)
        held = []
        for key in key_list:
            self._slots.setdefault((key, row), []).append(op_id)
            held.append((key, row))
        self._held[op_id] = held

    def remove(self, op_id: OpId) -> None:
        """Release every slot held by ``op_id``."""
        held = self._held.pop(op_id, None)
        if held is None:
            raise ValueError(f"operation {op_id!r} is not placed")
        for key, row in held:
            self._slots[(key, row)].remove(op_id)

    def is_placed(self, op_id: OpId) -> bool:
        """True when ``op_id`` currently holds slots."""
        return op_id in self._held

    def placed_ops(self) -> List[OpId]:
        """All operations currently holding slots."""
        return list(self._held)

    def utilization(self) -> Dict[ResourceKey, float]:
        """Fraction of each resource's kernel slots in use."""
        usage: Dict[ResourceKey, int] = {key: 0 for key in self._capacity}
        for (key, _row), holders in self._slots.items():
            usage[key] += len(holders)
        return {
            key: usage[key] / (self._capacity[key] * self.ii)
            for key in self._capacity
            if self._capacity[key] > 0
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModuloReservationTable(ii={self.ii}, "
            f"placed={len(self._held)})"
        )
