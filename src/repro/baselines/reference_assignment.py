"""Frozen seed implementation of the cluster assignment phase.

Companion to :mod:`repro.baselines.reference_pipeline`: the assignment
phase exactly as it stood before the hot-path overhaul — list-scanning
resource pools, a routing state that rebuilds value adjacency from the
graph and replans copies without memoization, the uncached prediction
formulas, and the ``min()``-scan work list of the assigner.  Shapes are
identical to the optimized phase (same Figure 10/11 decisions, same
committed clusters and copy plans); only the data structures differ.

The pure decision modules the overhaul did not touch (``selection``,
``annotate``, ``variants``, ``plan_copies`` itself) are shared with the
production pipeline rather than duplicated.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..core.annotate import build_annotated
from ..core.assignment import AssignmentStats
from ..core.copies import (
    CopyPlan,
    CopyRoutingError,
    RoutingSnapshot,
    plan_copies,
)
from ..core.ordering import AssignmentOrder
from ..core.selection import (
    CandidateInfo,
    select_best_cluster,
    select_failure_cluster,
)
from ..core.variants import HEURISTIC_ITERATIVE, AssignmentConfig
from ..ddg.graph import Ddg
from ..ddg.transform import AnnotatedDdg, trivial_annotation
from ..machine.machine import Machine, ResourceKey
from ..mrt.pool import PoolOverflowError


# ----------------------------------------------------------------------
# Resource pools (seed: per-call key-shape scans)
# ----------------------------------------------------------------------
class ReferencePools:
    """The seed assignment-phase resource pools."""

    def __init__(self, machine: Machine, ii: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.machine = machine
        self.ii = ii
        self._capacity: Dict[ResourceKey, int] = {
            key: per_cycle * ii
            for key, per_cycle in machine.resource_capacities().items()
        }
        self._used: Dict[ResourceKey, int] = {
            key: 0 for key in self._capacity
        }

    def free(self, key: ResourceKey) -> int:
        return self._capacity[key] - self._used[key]

    def can_reserve(self, keys: Iterable[ResourceKey]) -> bool:
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        return all(
            self._used[key] + count <= self._capacity[key]
            for key, count in demand.items()
        )

    def reserve(self, keys: Iterable[ResourceKey]) -> None:
        key_list = list(keys)
        if not self.can_reserve(key_list):
            for key in key_list:
                if self._used[key] >= self._capacity[key]:
                    raise PoolOverflowError(key, self._capacity[key])
            demand: Dict[ResourceKey, int] = {}
            for key in key_list:
                demand[key] = demand.get(key, 0) + 1
            for key, count in demand.items():
                if self._used[key] + count > self._capacity[key]:
                    raise PoolOverflowError(key, self._capacity[key])
        for key in key_list:
            self._used[key] += 1

    def release(self, keys: Iterable[ResourceKey]) -> None:
        for key in keys:
            if self._used[key] <= 0:
                raise ValueError(f"releasing unreserved resource {key!r}")
            self._used[key] -= 1

    def checkpoint(self) -> Dict[ResourceKey, int]:
        return dict(self._used)

    def restore(self, snapshot: Dict[ResourceKey, int]) -> None:
        self._used = dict(snapshot)

    def free_issue_slots(self, cluster_index: int) -> int:
        total = 0
        for key in self._capacity:
            if (
                isinstance(key, tuple)
                and len(key) == 3
                and key[0] == "issue"
                and key[1] == cluster_index
            ):
                total += self.free(key)
        return total

    def free_cluster_slots(self, cluster_index: int) -> int:
        total = self.free_issue_slots(cluster_index)
        if not self.machine.is_unified:
            total += self.free(self.machine.read_port_key(cluster_index))
            total += self.free(self.machine.write_port_key(cluster_index))
        return total

    def free_channel_slots_from(self, cluster_index: int) -> int:
        interconnect = self.machine.interconnect
        total = 0
        for key in interconnect.channel_resources():
            if key == "bus":
                total += self.free(key)
            elif isinstance(key, tuple) and key[0] == "link":
                if cluster_index in key[1:]:
                    total += self.free(key)
        return total

    def max_reservable_copies(self, cluster_index: int) -> int:
        if self.machine.is_unified:
            return 0
        read_free = self.free(self.machine.read_port_key(cluster_index))
        return min(read_free, self.free_channel_slots_from(cluster_index))


# ----------------------------------------------------------------------
# Routing state (seed: graph-derived adjacency, unmemoized replanning)
# ----------------------------------------------------------------------
class ReferenceRoutingState:
    """The seed routing state: value adjacency rebuilt from the graph."""

    def __init__(
        self,
        ddg: Ddg,
        machine: Machine,
        pools: ReferencePools,
        share_broadcast: bool = True,
    ) -> None:
        self.ddg = ddg
        self.machine = machine
        self.pools = pools
        self.share_broadcast = share_broadcast
        self.cluster_of: Dict[int, int] = {}
        self._plans: Dict[int, CopyPlan] = {}
        self._value_consumers: Dict[int, List[int]] = {}
        self._value_producers: Dict[int, List[int]] = {}
        for node_id in ddg.node_ids:
            self._value_consumers[node_id] = []
            self._value_producers[node_id] = []
        for edge in ddg.edges:
            if edge.src == edge.dst:
                continue
            if not ddg.node(edge.src).produces_value:
                continue
            if edge.dst not in self._value_consumers[edge.src]:
                self._value_consumers[edge.src].append(edge.dst)
            if edge.src not in self._value_producers[edge.dst]:
                self._value_producers[edge.dst].append(edge.src)

    def value_consumers(self, producer: int) -> List[int]:
        return list(self._value_consumers[producer])

    def unassigned_value_consumers(self, producer: int) -> int:
        return sum(
            1
            for consumer in self._value_consumers[producer]
            if consumer not in self.cluster_of
        )

    def needed_clusters(self, producer: int) -> Set[int]:
        home = self.cluster_of.get(producer)
        if home is None:
            return set()
        return {
            self.cluster_of[c]
            for c in self._value_consumers[producer]
            if c in self.cluster_of and self.cluster_of[c] != home
        }

    def required_copies(self, producer: int) -> int:
        plan = self._plans.get(producer)
        return 0 if plan is None else plan.copy_count

    def total_copies(self) -> int:
        return sum(plan.copy_count for plan in self._plans.values())

    def plans(self) -> Dict[int, CopyPlan]:
        return {p: plan for p, plan in self._plans.items() if plan.specs}

    def affected_producers(self, node_id: int) -> List[int]:
        affected = []
        if self.ddg.node(node_id).produces_value:
            affected.append(node_id)
        for producer in self._value_producers[node_id]:
            if producer not in affected:
                affected.append(producer)
        return affected

    def replan(self, producer: int) -> None:
        old = self._plans.pop(producer, None)
        if old is not None:
            self.pools.release(old.resources)
        if producer not in self.cluster_of:
            return
        plan = plan_copies(
            self.machine,
            producer,
            self.cluster_of[producer],
            self.needed_clusters(producer),
            share_broadcast=self.share_broadcast,
        )
        if not plan.specs:
            return
        self.pools.reserve(plan.resources)
        self._plans[producer] = plan

    def assign_unplanned(self, node_id: int, cluster: int) -> None:
        if node_id in self.cluster_of:
            raise ValueError(f"node {node_id} is already assigned")
        self.cluster_of[node_id] = cluster

    def set_cluster(self, node_id: int, cluster: int) -> None:
        if node_id in self.cluster_of:
            raise ValueError(f"node {node_id} is already assigned")
        self.cluster_of[node_id] = cluster
        for producer in self.affected_producers(node_id):
            self.replan(producer)

    def unassign_unplanned(self, node_id: int) -> None:
        if node_id not in self.cluster_of:
            raise ValueError(f"node {node_id} is not assigned")
        del self.cluster_of[node_id]

    def snapshot(self) -> RoutingSnapshot:
        return RoutingSnapshot(
            cluster_of=dict(self.cluster_of), plans=dict(self._plans)
        )

    def restore(self, snap: RoutingSnapshot) -> None:
        self.cluster_of = dict(snap.cluster_of)
        self._plans = dict(snap.plans)


# ----------------------------------------------------------------------
# Copy-pressure prediction (seed: per-node accessor calls)
# ----------------------------------------------------------------------
def _upper_bound(
    machine: Machine, routing: ReferenceRoutingState, node_id: int
) -> int:
    if not routing.ddg.node(node_id).produces_value:
        return 0
    rc = routing.required_copies(node_id)
    if machine.interconnect.broadcast:
        return max(0, 1 - rc)
    return max(0, machine.n_clusters - rc - 1)


def _predicted_copy_requests(
    machine: Machine,
    routing: ReferenceRoutingState,
    nodes_on_cluster: Set[int],
) -> int:
    total = 0
    for node_id in nodes_on_cluster:
        bound = _upper_bound(machine, routing, node_id)
        if bound == 0:
            continue
        unassigned = routing.unassigned_value_consumers(node_id)
        total += min(bound, unassigned)
    return total


def _prediction_satisfied(
    machine: Machine,
    routing: ReferenceRoutingState,
    pools: ReferencePools,
    cluster_index: int,
    nodes_on_cluster: Set[int],
) -> bool:
    pcr = _predicted_copy_requests(machine, routing, nodes_on_cluster)
    return pcr <= pools.max_reservable_copies(cluster_index)


# ----------------------------------------------------------------------
# The assigner (seed: min()-scan work list, uncached op keys)
# ----------------------------------------------------------------------
class _ReferenceAssigner:
    """Mutable state of one seed assignment attempt at a fixed II."""

    def __init__(
        self,
        ddg: Ddg,
        machine: Machine,
        ii: int,
        config: AssignmentConfig,
        stats: AssignmentStats,
        order: AssignmentOrder,
    ) -> None:
        self.ddg = ddg
        self.machine = machine
        self.ii = ii
        self.config = config
        self.stats = stats
        self.order = order
        self.pools = ReferencePools(machine, ii)
        self.routing = ReferenceRoutingState(
            ddg, machine, self.pools,
            share_broadcast=config.share_broadcast,
        )
        self.unassigned: Set[int] = set(ddg.node_ids)
        self.nodes_on: Dict[int, Set[int]] = {
            c: set() for c in machine.cluster_indices
        }
        self.issue_held: Dict[int, List[ResourceKey]] = {}
        self.previously_on: Dict[int, Set[int]] = {
            n: set() for n in ddg.node_ids
        }
        self.budget = max(config.budget_ratio * len(ddg), len(ddg) + 1)

    def _op_keys(
        self, node_id: int, cluster: int
    ) -> Optional[List[ResourceKey]]:
        try:
            return self.machine.op_resources(
                self.ddg.node(node_id).opcode, cluster
            )
        except ValueError:
            return None

    def _scc_partner_on(self, node_id: int, cluster: int) -> bool:
        scc = self.order.scc_of(node_id)
        if scc is None:
            return False
        return any(
            other != node_id and other in self.nodes_on[cluster]
            for other in scc.nodes
        )

    def _record_history(self, node_id: int, cluster: int) -> None:
        history = self.previously_on[node_id]
        history.add(cluster)
        if len(history) >= self.machine.n_clusters:
            history.clear()
            history.add(cluster)

    def evaluate(self, node_id: int, cluster: int) -> CandidateInfo:
        keys = self._op_keys(node_id, cluster)
        previously_here = cluster in self.previously_on[node_id]
        if keys is None:
            return CandidateInfo(
                cluster=cluster, feasible=False, shares_scc=False,
                prediction_ok=False, new_copies=0, free_resources=0,
                previously_here=previously_here, op_fits=False,
            )
        op_fits = self.pools.can_reserve(keys)
        pools_snap = self.pools.checkpoint()
        routing_snap = self.routing.snapshot()
        copies_before = self.routing.total_copies()
        feasible = False
        prediction_ok = True
        new_copies = 0
        free_resources = 0
        try:
            self.pools.reserve(keys)
            self.routing.set_cluster(node_id, cluster)
            feasible = True
            new_copies = self.routing.total_copies() - copies_before
            if self.config.predict_copies:
                prediction_ok = _prediction_satisfied(
                    self.machine,
                    self.routing,
                    self.pools,
                    cluster,
                    self.nodes_on[cluster] | {node_id},
                )
            free_resources = self.pools.free_cluster_slots(cluster)
        except (PoolOverflowError, CopyRoutingError):
            feasible = False
        finally:
            self.pools.restore(pools_snap)
            self.routing.restore(routing_snap)
        return CandidateInfo(
            cluster=cluster,
            feasible=feasible,
            shares_scc=self._scc_partner_on(node_id, cluster),
            prediction_ok=prediction_ok,
            new_copies=new_copies,
            free_resources=free_resources,
            previously_here=previously_here,
            op_fits=op_fits,
        )

    def count_conflicts(self, node_id: int, cluster: int) -> int:
        if self._op_keys(node_id, cluster) is None:
            return len(self.ddg.node_ids)
        pools_snap = self.pools.checkpoint()
        routing_snap = self.routing.snapshot()
        conflicts = 0
        self.routing.assign_unplanned(node_id, cluster)
        for producer in self.routing.affected_producers(node_id):
            try:
                self.routing.replan(producer)
            except (PoolOverflowError, CopyRoutingError):
                conflicts += 1
        self.pools.restore(pools_snap)
        self.routing.restore(routing_snap)
        return conflicts

    def commit(self, node_id: int, cluster: int) -> None:
        keys = self._op_keys(node_id, cluster)
        assert keys is not None
        self.pools.reserve(keys)
        self.routing.set_cluster(node_id, cluster)
        self.issue_held[node_id] = keys
        self.nodes_on[cluster].add(node_id)
        self.unassigned.discard(node_id)
        self._record_history(node_id, cluster)
        self.stats.placements += 1

    def evict(self, node_id: int, protect: Set[int]) -> bool:
        cluster = self.routing.cluster_of[node_id]
        self.pools.release(self.issue_held.pop(node_id))
        self.nodes_on[cluster].discard(node_id)
        self.routing.unassign_unplanned(node_id)
        self.unassigned.add(node_id)
        self.stats.evictions += 1
        for producer in self.routing.affected_producers(node_id):
            if not self._replan_or_evict(producer, protect):
                return False
        return True

    def _plan_victim(
        self, producer: int, protect: Set[int]
    ) -> Optional[int]:
        home = self.routing.cluster_of.get(producer)
        if home is None:
            return None
        if producer not in protect:
            return producer
        remote_consumers = [
            consumer
            for consumer in self.routing.value_consumers(producer)
            if consumer not in protect
            and self.routing.cluster_of.get(consumer, home) != home
        ]
        if not remote_consumers:
            return None
        return max(remote_consumers, key=self.order.priority_of)

    def _replan_or_evict(self, producer: int, protect: Set[int]) -> bool:
        while True:
            try:
                self.routing.replan(producer)
                return True
            except (PoolOverflowError, CopyRoutingError):
                victim = self._plan_victim(producer, protect)
                if victim is None:
                    return False
                if victim == producer:
                    return self.evict(producer, protect)
                if not self.evict(victim, protect):
                    return False

    def _issue_victim(
        self, node_id: int, cluster: int, keys: List[ResourceKey]
    ) -> Optional[int]:
        pool_key = keys[0]
        candidates = [
            other
            for other in self.nodes_on[cluster]
            if other != node_id and self.issue_held[other][0] == pool_key
        ]
        if not candidates:
            return None
        return max(candidates, key=self.order.priority_of)

    def force_assign(self, node_id: int, cluster: int) -> bool:
        keys = self._op_keys(node_id, cluster)
        if keys is None:
            return False
        protect = {node_id}
        while not self.pools.can_reserve(keys):
            victim = self._issue_victim(node_id, cluster, keys)
            if victim is None:
                return False
            if not self.evict(victim, protect):
                return False
        self.pools.reserve(keys)
        self.issue_held[node_id] = keys
        self.routing.assign_unplanned(node_id, cluster)
        self.nodes_on[cluster].add(node_id)
        self.unassigned.discard(node_id)
        for producer in self.routing.affected_producers(node_id):
            if not self._replan_or_evict(producer, protect):
                return False
        self._record_history(node_id, cluster)
        self.stats.placements += 1
        self.stats.forced_placements += 1
        return True

    def run(self) -> Optional[AnnotatedDdg]:
        while self.unassigned:
            if self.budget <= 0:
                return None
            self.budget -= 1
            node_id = min(self.unassigned, key=self.order.priority_of)
            candidates = [
                self.evaluate(node_id, cluster)
                for cluster in self.machine.cluster_indices
            ]
            chosen = select_best_cluster(
                candidates,
                node_in_scc=self.order.scc_of(node_id) is not None,
                use_heuristic=self.config.use_heuristic,
            )
            if chosen is not None:
                self.commit(node_id, chosen)
                continue
            if not self.config.iterative:
                return None
            with_conflicts = [
                CandidateInfo(
                    cluster=c.cluster,
                    feasible=c.feasible,
                    shares_scc=c.shares_scc,
                    prediction_ok=c.prediction_ok,
                    new_copies=c.new_copies,
                    free_resources=c.free_resources,
                    previously_here=c.previously_here,
                    op_fits=c.op_fits,
                    conflicts=self.count_conflicts(node_id, c.cluster),
                )
                for c in candidates
            ]
            forced = select_failure_cluster(with_conflicts)
            if forced is None or not self.force_assign(node_id, forced):
                return None

        self.stats.copies = self.routing.total_copies()
        self.stats.succeeded = True
        return build_annotated(
            self.ddg,
            self.machine,
            self.routing.cluster_of,
            self.routing.plans(),
        )


def reference_assign_clusters(
    ddg: Ddg,
    machine: Machine,
    ii: int,
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    stats: Optional[AssignmentStats] = None,
) -> Optional[AnnotatedDdg]:
    """Seed assignment attempt at candidate ``ii``.

    The caller supplies the frozen seed ordering via
    :func:`repro.baselines.reference_pipeline.reference_build_assignment_order`
    (imported lazily here to avoid a module cycle).
    """
    from .reference_pipeline import reference_build_assignment_order

    if len(ddg) == 0:
        raise ValueError("cannot assign an empty graph")
    if stats is None:
        stats = AssignmentStats(ii=ii)
    if machine.is_unified:
        stats.succeeded = True
        return trivial_annotation(ddg, machine)
    order = reference_build_assignment_order(
        ddg, ii, scc_first=config.scc_first
    )
    assigner = _ReferenceAssigner(ddg, machine, ii, config, stats, order)
    return assigner.run()
