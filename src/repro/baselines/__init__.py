"""Baseline schedulers the paper compares against conceptually."""

from .bug_list import AcyclicResult, bug_list_schedule

__all__ = ["AcyclicResult", "bug_list_schedule"]
