"""Baseline schedulers and the retained slow-reference pipeline."""

from .bug_list import AcyclicResult, bug_list_schedule
from .reference_assignment import (
    ReferencePools,
    ReferenceRoutingState,
    reference_assign_clusters,
)
from .reference_pipeline import (
    ReferenceCompilation,
    ReferenceCompilationError,
    ReferenceMrt,
    reference_assignment_order,
    reference_compile_loop,
    reference_compute_metrics,
    reference_find_sccs,
    reference_mii,
    reference_modulo_schedule,
    reference_rec_mii,
    reference_rec_mii_of_subgraph,
)

__all__ = [
    "AcyclicResult",
    "bug_list_schedule",
    "ReferenceCompilation",
    "ReferenceCompilationError",
    "ReferenceMrt",
    "ReferencePools",
    "ReferenceRoutingState",
    "reference_assign_clusters",
    "reference_assignment_order",
    "reference_compile_loop",
    "reference_compute_metrics",
    "reference_find_sccs",
    "reference_mii",
    "reference_modulo_schedule",
    "reference_rec_mii",
    "reference_rec_mii_of_subgraph",
]
