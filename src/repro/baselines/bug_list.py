"""BUG-style acyclic baseline: greedy assignment + list scheduling.

Ellis's Bottom-Up Greedy (BUG, cited as [25] by the paper) and its
descendants treat the code as a DAG: each operation is placed on the
cluster that lets it *complete earliest*, accounting for copy latencies,
and a cycle-driven list scheduler packs the result.  The paper's Related
Work argues such schedule-length-minimizing approaches "do not apply as
well" to loops, where throughput (II) is what matters, even when the
loop is unrolled first.

This module implements that baseline faithfully enough to measure the
claim:

* loop-carried edges are treated the way straight-line schedulers treat
  them — as live-in values available at cycle 0 (distance >= 1 edges
  constrain nothing inside one unrolled body but serialize successive
  bodies);
* cluster choice: earliest completion time, ties to the least-loaded
  cluster (the BUG criterion);
* copies: one explicit copy op per needed cluster transfer, occupying
  ports/buses/links in the cycle it moves, exactly the paper's model;
* successive executions of the (unrolled) body cannot overlap — the
  next body starts after every loop-carried producer has completed, so
  the steady-state initiation interval of the *original* loop is
  ``restart_interval / unroll_factor``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ddg.graph import Ddg
from ..machine.machine import Machine, ResourceKey
from ..scheduling.priority import compute_metrics


@dataclass
class AcyclicResult:
    """Outcome of list-scheduling one (possibly unrolled) loop body."""

    makespan: int
    restart_interval: int
    unroll_factor: int
    copies: int
    start: Dict[int, int]
    cluster_of: Dict[int, int]

    @property
    def effective_ii(self) -> float:
        """Steady-state cycles per *original* iteration."""
        return self.restart_interval / self.unroll_factor


class _CycleTable:
    """Per-cycle resource occupancy for the acyclic scheduler."""

    def __init__(self, machine: Machine) -> None:
        self.capacities = machine.resource_capacities()
        self.used: Dict[Tuple[ResourceKey, int], int] = {}

    def fits(self, keys: List[ResourceKey], cycle: int) -> bool:
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        return all(
            self.used.get((key, cycle), 0) + count
            <= self.capacities.get(key, 0)
            for key, count in demand.items()
        )

    def take(self, keys: List[ResourceKey], cycle: int) -> None:
        for key in keys:
            self.used[(key, cycle)] = self.used.get((key, cycle), 0) + 1


def _best_restart_interval(
    ddg: Ddg,
    start: Dict[int, int],
    table: "_CycleTable",
    makespan: int,
) -> int:
    """Smallest interval at which the fixed block can re-issue.

    This is the post-scheduling treatment the paper's Related Work
    ascribes to Capitanio et al.: keep the acyclic schedule's positions
    and overlap successive executions as tightly as dependences and
    folded resource usage allow.  Body ``i`` starts at ``i * R``:

    * a carried edge ``(u, v, d)`` requires
      ``R >= (start_u + lat_u - start_v) / d``;
    * folding the block's per-cycle resource usage modulo ``R`` must not
      exceed any capacity.
    """
    lower = 1
    for edge in ddg.edges:
        if edge.distance == 0:
            continue
        need = start[edge.src] + ddg.latency(edge.src) - start[edge.dst]
        if need > 0:
            bound = -(-need // edge.distance)
            lower = max(lower, bound)
    for candidate in range(lower, makespan + 1):
        folded: Dict[Tuple[ResourceKey, int], int] = {}
        feasible = True
        for (key, cycle), used in table.used.items():
            slot = (key, cycle % candidate)
            folded[slot] = folded.get(slot, 0) + used
            if folded[slot] > table.capacities.get(key, 0):
                feasible = False
                break
        if feasible:
            return candidate
    return makespan


def bug_list_schedule(
    ddg: Ddg,
    machine: Machine,
    unroll_factor: int = 1,
    horizon: Optional[int] = None,
) -> AcyclicResult:
    """Greedy-assign and list-schedule one loop body on ``machine``.

    ``ddg`` should already be unrolled if desired; ``unroll_factor``
    only scales the reported effective II.
    """
    if len(ddg) == 0:
        raise ValueError("cannot schedule an empty graph")
    if horizon is None:
        horizon = ddg.total_latency() * 4 + 64

    metrics = compute_metrics(ddg, max(1, ddg.total_latency()))
    # Priority: critical path first (BUG works bottom-up from the most
    # distant consumers; max height is the standard equivalent).
    order = sorted(
        ddg.node_ids, key=lambda n: (-metrics.height[n], n)
    )
    table = _CycleTable(machine)
    start: Dict[int, int] = {}
    cluster_of: Dict[int, int] = {}
    # Availability of each value per cluster: value -> {cluster: cycle}.
    available: Dict[int, Dict[int, int]] = {}
    copies = 0

    def ready_cycle(node_id: int, cluster: int) -> Tuple[int, int]:
        """(earliest issue on cluster, extra copies needed)."""
        earliest = 0
        extra = 0
        for edge in ddg.in_edges(node_id):
            if edge.distance > 0:
                continue  # acyclic view: carried deps are live-ins
            src = edge.src
            if not ddg.node(src).produces_value:
                if src in start:
                    earliest = max(
                        earliest, start[src] + ddg.latency(src)
                    )
                continue
            sites = available.get(src, {})
            if not sites:
                continue  # scheduled later by priority: treated as ready
            if cluster in sites:
                earliest = max(earliest, sites[cluster])
            else:
                # Needs a copy chain from the nearest holding cluster.
                best = None
                for holder, cycle in sites.items():
                    hops = len(machine.copy_route(holder, cluster)) - 1
                    arrival = cycle + hops
                    if best is None or arrival < best:
                        best = arrival
                earliest = max(earliest, best)
                extra += 1
        return earliest, extra

    for node_id in order:
        node = ddg.node(node_id)
        best: Optional[Tuple[int, int, int]] = None  # (finish, load, cluster)
        for cluster in machine.cluster_indices:
            try:
                keys = machine.op_resources(node.opcode, cluster)
            except ValueError:
                continue
            earliest, extra = ready_cycle(node_id, cluster)
            cycle = earliest
            while cycle < horizon and not table.fits(keys, cycle):
                cycle += 1
            finish = cycle + node.latency + extra
            load = sum(
                1 for other, c in cluster_of.items() if c == cluster
            )
            candidate = (finish, load, cluster)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            raise ValueError(
                f"no cluster can execute {node} on {machine.name}"
            )
        _, _, cluster = best
        keys = machine.op_resources(node.opcode, cluster)
        earliest, _ = ready_cycle(node_id, cluster)
        cycle = earliest
        while cycle < horizon and not table.fits(keys, cycle):
            cycle += 1
        table.take(keys, cycle)
        start[node_id] = cycle
        cluster_of[node_id] = cluster
        if node.produces_value:
            sites = available.setdefault(node_id, {})
            sites[cluster] = cycle + node.latency
        # Materialize copies for already-scheduled consumers elsewhere
        # and for this node's own missing operands.
        for edge in ddg.in_edges(node_id):
            if edge.distance > 0:
                continue
            src = edge.src
            if not ddg.node(src).produces_value:
                continue
            sites = available.get(src)
            if sites is None or cluster in sites:
                continue
            # Insert hop copies along the route from the best holder.
            holder, at = min(
                sites.items(), key=lambda item: item[1] + len(
                    machine.copy_route(item[0], cluster)
                )
            )
            route = machine.copy_route(holder, cluster)
            for a, b in zip(route, route[1:]):
                hop_keys = machine.copy_hop_resources(a, [b])
                hop_cycle = max(at, start[node_id] - 1)
                while hop_cycle < horizon and not table.fits(
                    hop_keys, hop_cycle
                ):
                    hop_cycle += 1
                table.take(hop_keys, hop_cycle)
                at = hop_cycle + 1
                sites[b] = at
                copies += 1

    makespan = max(
        start[n] + ddg.latency(n) for n in ddg.node_ids
    )
    restart = _best_restart_interval(ddg, start, table, makespan)
    return AcyclicResult(
        makespan=makespan,
        restart_interval=restart,
        unroll_factor=max(1, unroll_factor),
        copies=copies,
        start=start,
        cluster_of=cluster_of,
    )
