"""The retained slow-reference pipeline for differential testing.

This module freezes the pre-optimization implementations of every stage
the hot-path overhaul touched — monolithic whole-graph RecMII,
networkx-based SCC discovery, per-edge-object priority relaxation, the
list-scan SMS ordering, the ``min()``-scan modulo scheduler, and the
dict-rebuilding reservation table — exactly as they stood before the
compiled-DDG-view / memoized-RecMII / heap-scheduler / counter-MRT
changes.

It exists so the optimized pipeline can be proven **bit-identical** (same
II, same copy counts, same start-cycle maps) against a known-good
baseline, both in the tier-1 differential test
(``tests/integration/test_differential_reference.py``) and in
``benchmarks/test_hotpath.py`` which times the two paths against each
other.  Future performance PRs should keep diffing against this module.

Nothing here is exported for production use; the only intended consumers
are tests and benchmarks.  The cluster *assignment* phase is shared with
the optimized pipeline (its ordering inputs are differentially checked
via :func:`reference_assignment_order`), so :func:`reference_compile_loop`
exercises: shared assignment -> reference scheduler on reference order
with the reference MRT, gated by reference RecMII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from ..core.assignment import AssignmentStats
from ..core.ordering import AssignmentOrder
from ..core.variants import HEURISTIC_ITERATIVE, AssignmentConfig
from ..ddg.graph import Ddg
from ..ddg.mii import res_mii
from ..ddg.scc import Scc, SccPartition
from ..ddg.transform import AnnotatedDdg
from ..machine.machine import Machine, ResourceKey
from ..scheduling.priority import (
    PriorityDivergenceError,
    PriorityMetrics,
)
from ..scheduling.schedule import Schedule
from ..scheduling.swing import BOTTOM_UP, TOP_DOWN, ordering_sets
from .. import scheduling

OpId = Hashable


# ----------------------------------------------------------------------
# RecMII / MII (seed: one Bellman–Ford binary search over the whole graph)
# ----------------------------------------------------------------------
def _positive_cycle_exists(
    nodes: List[int],
    edges: List[Tuple[int, int, int, int]],
    candidate_ii: int,
) -> bool:
    dist = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, latency, distance in edges:
            weight = latency - candidate_ii * distance
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    return True


def _cycle_exists(nodes: List[int], arcs: List[Tuple[int, int]]) -> bool:
    succs: Dict[int, List[int]] = {node: [] for node in nodes}
    for src, dst in arcs:
        succs[src].append(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in nodes}
    for start in nodes:
        if colour[start] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        colour[start] = GRAY
        while stack:
            node, next_index = stack[-1]
            if next_index < len(succs[node]):
                stack[-1] = (node, next_index + 1)
                succ = succs[node][next_index]
                if colour[succ] == GRAY:
                    return True
                if colour[succ] == WHITE:
                    colour[succ] = GRAY
                    stack.append((succ, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return False


def _subgraph_edges(
    ddg: Ddg, nodes: Set[int]
) -> List[Tuple[int, int, int, int]]:
    node_set = set(nodes)
    edges = []
    for edge in ddg.edges:
        if edge.src in node_set and edge.dst in node_set:
            edges.append(
                (edge.src, edge.dst, ddg.latency(edge.src), edge.distance)
            )
    return edges


def reference_rec_mii_of_subgraph(ddg: Ddg, nodes: Iterable[int]) -> int:
    """Seed RecMII of one node subset: uncached binary search."""
    node_list = list(nodes)
    edges = _subgraph_edges(ddg, set(node_list))
    if not edges:
        return 0
    upper = max(sum(ddg.latency(n) for n in node_list), 1)
    if _positive_cycle_exists(node_list, edges, upper):
        raise ValueError(
            "dependence cycle with zero total distance: graph is unschedulable"
        )
    if _cycle_exists(
        node_list,
        [(src, dst) for src, dst, latency, distance in edges
         if latency == 0 and distance == 0],
    ):
        raise ValueError(
            "dependence cycle with zero total distance: graph is unschedulable"
        )
    low, high = 0, upper
    if not _positive_cycle_exists(node_list, edges, 0):
        return 0
    while high - low > 1:
        mid = (low + high) // 2
        if _positive_cycle_exists(node_list, edges, mid):
            low = mid
        else:
            high = mid
    return high


def reference_rec_mii(ddg: Ddg) -> int:
    """Seed whole-graph RecMII: one monolithic search, no SCC split."""
    return reference_rec_mii_of_subgraph(ddg, ddg.node_ids)


def reference_mii(ddg: Ddg, machine) -> int:
    """Seed ``max(RecMII, ResMII)`` (ResMII was not touched)."""
    return max(reference_rec_mii(ddg), res_mii(ddg, machine), 1)


# ----------------------------------------------------------------------
# SCCs (seed: networkx strongly_connected_components)
# ----------------------------------------------------------------------
def reference_find_sccs(ddg: Ddg) -> SccPartition:
    """Seed SCC partition: networkx components, uncached RecMII scores."""
    graph = ddg.to_networkx()
    raw_components = []
    for component in nx.strongly_connected_components(graph):
        nodes = frozenset(component)
        if len(nodes) > 1:
            raw_components.append(nodes)
        else:
            (only,) = nodes
            if any(edge.dst == only for edge in ddg.out_edges(only)):
                raw_components.append(nodes)

    scored = []
    for nodes in raw_components:
        rec_mii = reference_rec_mii_of_subgraph(ddg, nodes)
        scored.append((rec_mii, nodes))
    scored.sort(key=lambda item: (-item[0], -len(item[1]), min(item[1])))

    sccs = [
        Scc(index=i, nodes=nodes, rec_mii=rec_mii)
        for i, (rec_mii, nodes) in enumerate(scored)
    ]
    membership = {
        node_id: scc.index for scc in sccs for node_id in scc.nodes
    }
    return SccPartition(sccs=sccs, membership=membership)


# ----------------------------------------------------------------------
# Priority metrics (seed: per-edge-object relaxation)
# ----------------------------------------------------------------------
def _relax_forward(ddg: Ddg, ii: int) -> Dict[int, int]:
    asap = {node_id: 0 for node_id in ddg.node_ids}
    for _ in range(len(asap) + 1):
        changed = False
        for edge in ddg.edges:
            weight = ddg.latency(edge.src) - ii * edge.distance
            candidate = asap[edge.src] + weight
            if candidate > asap[edge.dst]:
                asap[edge.dst] = candidate
                changed = True
        if not changed:
            return asap
    raise PriorityDivergenceError(
        f"ASAP relaxation diverges at II={ii}: II is below RecMII"
    )


def _relax_backward(ddg: Ddg, ii: int) -> Dict[int, int]:
    height = {node_id: ddg.latency(node_id) for node_id in ddg.node_ids}
    for _ in range(len(height) + 1):
        changed = False
        for edge in ddg.edges:
            weight = ddg.latency(edge.src) - ii * edge.distance
            candidate = height[edge.dst] + weight
            if candidate > height[edge.src]:
                height[edge.src] = candidate
                changed = True
        if not changed:
            return height
    raise PriorityDivergenceError(
        f"height relaxation diverges at II={ii}: II is below RecMII"
    )


def reference_compute_metrics(ddg: Ddg, ii: int) -> PriorityMetrics:
    """Seed ASAP/ALAP/height metrics."""
    if len(ddg) == 0:
        return PriorityMetrics(ii=ii, asap={}, alap={}, height={},
                               critical_path=0)
    asap = _relax_forward(ddg, ii)
    height = _relax_backward(ddg, ii)
    critical_path = max(
        asap[node_id] + ddg.latency(node_id) for node_id in ddg.node_ids
    )
    alap = {
        node_id: critical_path - height[node_id] for node_id in ddg.node_ids
    }
    return PriorityMetrics(
        ii=ii,
        asap=asap,
        alap=alap,
        height=height,
        critical_path=critical_path,
    )


# ----------------------------------------------------------------------
# SMS ordering (seed: Ddg accessor walks)
# ----------------------------------------------------------------------
def _pick(candidates, primary, metrics):
    return min(
        candidates,
        key=lambda n: (-primary[n], metrics.mobility(n), n),
    )


def reference_swing_order(ddg, sets, metrics) -> List[int]:
    """Seed SMS sweep using the graph's accessor methods directly."""
    order: List[int] = []
    ordered: Set[int] = set()

    for node_set in sets:
        pending = set(node_set) - ordered
        if not pending:
            continue
        ready_after_preds = {
            n for n in pending
            if any(p in ordered for p in ddg.predecessors(n))
        }
        ready_before_succs = {
            n for n in pending
            if any(s in ordered for s in ddg.successors(n))
        }
        if ready_after_preds:
            frontier, direction = ready_after_preds, TOP_DOWN
        elif ready_before_succs:
            frontier, direction = ready_before_succs, BOTTOM_UP
        else:
            seed = _pick(pending, metrics.height, metrics)
            frontier, direction = {seed}, TOP_DOWN

        while pending:
            while frontier:
                if direction == TOP_DOWN:
                    node = _pick(frontier, metrics.height, metrics)
                else:
                    node = _pick(frontier, metrics.asap, metrics)
                order.append(node)
                ordered.add(node)
                pending.discard(node)
                frontier.discard(node)
                if direction == TOP_DOWN:
                    grown = ddg.successors(node)
                else:
                    grown = ddg.predecessors(node)
                frontier.update(n for n in grown if n in pending)
            if direction == TOP_DOWN:
                direction = BOTTOM_UP
                frontier = {
                    n for n in pending
                    if any(s in ordered for s in ddg.successors(n))
                }
            else:
                direction = TOP_DOWN
                frontier = {
                    n for n in pending
                    if any(p in ordered for p in ddg.predecessors(n))
                }
            if not frontier and pending:
                seed = _pick(pending, metrics.height, metrics)
                frontier, direction = {seed}, TOP_DOWN
    return order


def reference_assignment_order(ddg: Ddg, ii: int) -> List[int]:
    """Seed Section 4.1 ordering: SCC sets by RecMII, SMS within."""
    partition = reference_find_sccs(ddg)
    metrics = reference_compute_metrics(ddg, max(ii, 1))
    return reference_swing_order(ddg, ordering_sets(ddg, partition), metrics)


def reference_build_assignment_order(
    ddg: Ddg, ii: int, scc_first: bool = True
) -> AssignmentOrder:
    """Seed assignment work list with its SCC structure (seed ordering)."""
    metrics = reference_compute_metrics(ddg, max(ii, 1))
    if scc_first:
        partition = reference_find_sccs(ddg)
        sets = ordering_sets(ddg, partition)
    else:
        partition = SccPartition(sccs=[], membership={})
        sets = [set(ddg.node_ids)]
    order = reference_swing_order(ddg, sets, metrics)
    if len(order) != len(ddg):
        raise RuntimeError(
            f"ordering covered {len(order)} of {len(ddg)} nodes"
        )
    rank = {node_id: index for index, node_id in enumerate(order)}
    return AssignmentOrder(order=order, rank=rank, partition=partition)


# ----------------------------------------------------------------------
# Reservation table (seed: holder lists only, dict-rebuilding available())
# ----------------------------------------------------------------------
class ReferenceMrt:
    """The seed modulo reservation table, list-scans and all."""

    def __init__(self, machine: Machine, ii: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.machine = machine
        self.ii = ii
        self._capacity: Dict[ResourceKey, int] = machine.resource_capacities()
        self._slots: Dict[Tuple[ResourceKey, int], List[OpId]] = {}
        self._held: Dict[OpId, List[Tuple[ResourceKey, int]]] = {}

    def row(self, cycle: int) -> int:
        return cycle % self.ii

    def _occupancy(self, key: ResourceKey, row: int) -> List[OpId]:
        return self._slots.get((key, row), [])

    def available(self, keys: Iterable[ResourceKey], cycle: int) -> bool:
        row = self.row(cycle)
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        for key, count in demand.items():
            capacity = self._capacity.get(key)
            if capacity is None:
                raise KeyError(f"unknown resource key {key!r}")
            if len(self._occupancy(key, row)) + count > capacity:
                return False
        return True

    def conflicting_ops(
        self, keys: Iterable[ResourceKey], cycle: int
    ) -> Set[OpId]:
        row = self.row(cycle)
        conflicting: Set[OpId] = set()
        demand: Dict[ResourceKey, int] = {}
        for key in keys:
            demand[key] = demand.get(key, 0) + 1
        for key, count in demand.items():
            holders = self._occupancy(key, row)
            if len(holders) + count > self._capacity[key]:
                conflicting.update(holders)
        return conflicting

    def place(
        self, op_id: OpId, keys: Iterable[ResourceKey], cycle: int
    ) -> None:
        if op_id in self._held:
            raise ValueError(f"operation {op_id!r} is already placed")
        key_list = list(keys)
        if not self.available(key_list, cycle):
            raise RuntimeError(
                f"resources for {op_id!r} unavailable at cycle {cycle}"
            )
        row = self.row(cycle)
        held = []
        for key in key_list:
            self._slots.setdefault((key, row), []).append(op_id)
            held.append((key, row))
        self._held[op_id] = held

    def remove(self, op_id: OpId) -> None:
        held = self._held.pop(op_id, None)
        if held is None:
            raise ValueError(f"operation {op_id!r} is not placed")
        for key, row in held:
            self._slots[(key, row)].remove(op_id)


# ----------------------------------------------------------------------
# Modulo scheduler (seed: min()-scan work list, per-probe available())
# ----------------------------------------------------------------------
def reference_modulo_schedule(
    annotated: AnnotatedDdg,
    ii: int,
    budget_ratio: int = scheduling.DEFAULT_BUDGET_RATIO,
) -> Optional[Schedule]:
    """Seed iterative modulo scheduling attempt at one II."""
    ddg = annotated.ddg
    if len(ddg) == 0:
        raise ValueError("cannot schedule an empty graph")
    if reference_rec_mii(ddg) > ii:
        return None
    order = reference_assignment_order(ddg, ii)
    rank = {node_id: index for index, node_id in enumerate(order)}
    resources = {
        node_id: annotated.resources_of(node_id) for node_id in ddg.node_ids
    }
    metrics = reference_compute_metrics(ddg, ii)

    mrt = ReferenceMrt(annotated.machine, ii)
    start: Dict[int, int] = {}
    previous_start: Dict[int, int] = {}
    unscheduled: Set[int] = set(ddg.node_ids)
    budget = max(budget_ratio * len(ddg), len(ddg) + 1)

    def earliest_start(node_id: int) -> Optional[int]:
        bound: Optional[int] = None
        for edge in ddg.in_edges(node_id):
            if edge.src in start and edge.src != node_id:
                candidate = (
                    start[edge.src]
                    + ddg.latency(edge.src)
                    - ii * edge.distance
                )
                if bound is None or candidate > bound:
                    bound = candidate
        return bound

    def latest_start(node_id: int) -> Optional[int]:
        bound: Optional[int] = None
        for edge in ddg.out_edges(node_id):
            if edge.dst in start and edge.dst != node_id:
                candidate = (
                    start[edge.dst]
                    - ddg.latency(node_id)
                    + ii * edge.distance
                )
                if bound is None or candidate < bound:
                    bound = candidate
        return bound

    def displace(node_id: int) -> None:
        mrt.remove(node_id)
        del start[node_id]
        unscheduled.add(node_id)

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        node_id = min(unscheduled, key=lambda n: rank[n])
        keys = resources[node_id]
        estart = earliest_start(node_id)
        lstart = latest_start(node_id)

        if estart is not None:
            window = range(estart, min(
                estart + ii,
                (lstart + 1) if lstart is not None else estart + ii,
            ))
            forced_time = estart
        elif lstart is not None:
            window = range(lstart, lstart - ii, -1)
            forced_time = lstart
        else:
            base = metrics.asap[node_id]
            window = range(base, base + ii)
            forced_time = base

        chosen: Optional[int] = None
        for t in window:
            if mrt.available(keys, t):
                chosen = t
                break
        if chosen is None:
            chosen = forced_time
            if node_id in previous_start:
                chosen = max(forced_time, previous_start[node_id] + 1)

        for victim in list(mrt.conflicting_ops(keys, chosen)):
            displace(victim)
        mrt.place(node_id, keys, chosen)
        start[node_id] = chosen
        previous_start[node_id] = chosen
        unscheduled.discard(node_id)

        for edge in ddg.out_edges(node_id):
            if edge.dst in start and edge.dst != node_id:
                needed = chosen + ddg.latency(node_id) - ii * edge.distance
                if start[edge.dst] < needed:
                    displace(edge.dst)
        for edge in ddg.in_edges(node_id):
            if edge.src in start and edge.src != node_id:
                limit = chosen - ddg.latency(edge.src) + ii * edge.distance
                if start[edge.src] > limit:
                    displace(edge.src)

    lowest = min(start.values())
    if lowest < 0:
        shift = ((-lowest + ii - 1) // ii) * ii
        start = {node_id: t + shift for node_id, t in start.items()}
    return Schedule(annotated=annotated, ii=ii, start=start)


# ----------------------------------------------------------------------
# Driver (seed Figure 5 loop over the reference phases)
# ----------------------------------------------------------------------
@dataclass
class ReferenceCompilation:
    """Slim outcome record of one reference-path compilation."""

    ii: int
    mii: int
    copy_count: int
    start: Dict[int, int]
    cluster_of: Dict[int, int]


class ReferenceCompilationError(RuntimeError):
    """The reference path found no schedule within the II bound."""


def reference_compile_loop(
    ddg: Ddg,
    machine: Machine,
    config: AssignmentConfig = HEURISTIC_ITERATIVE,
    scheduler_budget_ratio: int = scheduling.DEFAULT_BUDGET_RATIO,
    min_ii: Optional[int] = None,
) -> ReferenceCompilation:
    """Compile one loop through the slow-reference phases (Figure 5).

    Every stage is a frozen seed implementation: MII, ordering, the
    cluster assignment phase
    (:func:`repro.baselines.reference_assignment.reference_assign_clusters`),
    scheduling, and the reservation table.
    """
    from .reference_assignment import reference_assign_clusters

    unified = machine.unified_equivalent()
    machine_mii = reference_mii(ddg, unified)
    lower = machine_mii if min_ii is None else max(1, min_ii)
    upper = lower + ddg.total_latency() + 2 * len(ddg) + 16
    for candidate_ii in range(lower, upper + 1):
        stats = AssignmentStats(ii=candidate_ii)
        annotated = reference_assign_clusters(
            ddg, machine, candidate_ii, config, stats=stats
        )
        if annotated is None:
            continue
        schedule = reference_modulo_schedule(
            annotated, candidate_ii, budget_ratio=scheduler_budget_ratio
        )
        if schedule is None:
            continue
        return ReferenceCompilation(
            ii=candidate_ii,
            mii=machine_mii,
            copy_count=annotated.copy_count,
            start=dict(schedule.start),
            cluster_of=dict(annotated.cluster_of),
        )
    raise ReferenceCompilationError(
        f"no schedule for {ddg.name or 'loop'} on {machine.name} "
        f"within II <= {upper}"
    )
