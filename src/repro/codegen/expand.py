"""Software-pipeline expansion: prologue / kernel / epilogue.

A modulo schedule with S stages executes iterations overlapped S-deep.
Flat (non-predicated, non-rotating) code for a trip count ``N >= S``
therefore consists of:

* a **prologue** of ``(S-1) * II`` cycles ramping the pipeline up — at
  cycle ``t`` it issues every operation ``n`` whose
  ``start(n) + i*II == t`` for some started iteration ``i``;
* the **kernel** of ``II`` cycles, executed ``N - S + 1`` times — one
  instance of every operation per pass, each reading values produced
  ``stage(n)`` kernel passes ago;
* an **epilogue** of ``(S-1) * II`` cycles draining the last ``S-1``
  in-flight iterations.

Every operation appears exactly ``S`` times in the static code — the
classic code-expansion-factor-equals-stage-count result, which
predicated kernel-only execution avoids (paper reference [20]); both
emitters are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..scheduling.schedule import Schedule


@dataclass(frozen=True)
class Instr:
    """One static instruction slot of the expanded code.

    ``iteration_offset`` identifies which loop iteration (relative to the
    first iteration issued in this region) the instance belongs to.
    """

    node_id: int
    cluster: int
    iteration_offset: int
    stage: int


@dataclass
class PipelinedCode:
    """Expanded pipelined code: instruction lists per cycle, per region."""

    ii: int
    stage_count: int
    prologue: List[List[Instr]] = field(default_factory=list)
    kernel: List[List[Instr]] = field(default_factory=list)
    epilogue: List[List[Instr]] = field(default_factory=list)

    @property
    def prologue_cycles(self) -> int:
        """Length of the ramp-up region in cycles."""
        return len(self.prologue)

    @property
    def epilogue_cycles(self) -> int:
        """Length of the drain region in cycles."""
        return len(self.epilogue)

    @property
    def static_instruction_count(self) -> int:
        """All instruction slots across the three regions."""
        return sum(
            len(cycle_ops)
            for region in (self.prologue, self.kernel, self.epilogue)
            for cycle_ops in region
        )

    def expansion_factor(self, n_ops: int) -> float:
        """Static instructions per loop operation (S for flat code)."""
        return self.static_instruction_count / n_ops

    def min_trip_count(self) -> int:
        """Smallest trip count this flat expansion is valid for."""
        return self.stage_count


def expand_pipeline(schedule: Schedule) -> PipelinedCode:
    """Expand ``schedule`` into flat prologue/kernel/epilogue code."""
    annotated = schedule.annotated
    ii = schedule.ii
    stage_count = schedule.stage_count

    def instr(node_id: int, iteration: int) -> Instr:
        return Instr(
            node_id=node_id,
            cluster=annotated.cluster_of[node_id],
            iteration_offset=iteration,
            stage=schedule.stage(node_id),
        )

    code = PipelinedCode(ii=ii, stage_count=stage_count)

    # Prologue: absolute cycles [0, (S-1)*II) of the overlapped execution.
    for cycle in range((stage_count - 1) * ii):
        ops = []
        for node_id, start in schedule.start.items():
            if start <= cycle and (cycle - start) % ii == 0:
                ops.append(instr(node_id, (cycle - start) // ii))
        code.prologue.append(ops)

    # Kernel: one instance of every op, by row.
    for row in range(ii):
        ops = [
            instr(node_id, stage_count - 1 - schedule.stage(node_id))
            for node_id in schedule.start
            if schedule.row(node_id) == row
        ]
        code.kernel.append(ops)

    # Epilogue: cycles [(S-1)*II + II, ...) relative to the *last* kernel
    # pass — operation n of a still-in-flight iteration k (0 = oldest)
    # drains when its remaining stages exceed k.
    for drain_cycle in range((stage_count - 1) * ii):
        cycle = stage_count * ii + drain_cycle  # absolute, first iter = 0
        ops = []
        for node_id, start in schedule.start.items():
            if (cycle - start) % ii != 0:
                continue
            iteration = (cycle - start) // ii
            # Iterations 1 .. S-1 (relative to the last kernel pass's
            # oldest iteration) are still draining.
            if 1 <= iteration <= stage_count - 1:
                ops.append(instr(node_id, iteration))
        code.epilogue.append(ops)

    return code


def format_pipelined(code: PipelinedCode, schedule: Schedule) -> str:
    """Human-readable listing of the expanded code."""
    ddg = schedule.annotated.ddg

    def cell(entry: Instr) -> str:
        return (
            f"{ddg.node(entry.node_id)}@C{entry.cluster}"
            f"[i+{entry.iteration_offset}]"
        )

    lines: List[str] = []
    for title, region in (
        ("PROLOGUE", code.prologue),
        ("KERNEL (loop body)", code.kernel),
        ("EPILOGUE", code.epilogue),
    ):
        lines.append(f"--- {title} ({len(region)} cycles) ---")
        for index, ops in enumerate(region):
            cells = "  ".join(cell(entry) for entry in ops)
            lines.append(f"{index:>4}: {cells}")
    return "\n".join(lines)


def format_kernel_only(schedule: Schedule) -> str:
    """Kernel-only listing with stage predicates.

    With predicated execution (paper reference [20]) the prologue and
    epilogue collapse into the kernel: each operation is guarded by the
    predicate of its stage, which the hardware sets as iterations start
    and drain.  Code expansion factor: 1.
    """
    ddg = schedule.annotated.ddg
    lines = [
        f"--- PREDICATED KERNEL (II={schedule.ii}, "
        f"{schedule.stage_count} stage predicates) ---"
    ]
    for row_index, row in enumerate(schedule.kernel_rows()):
        cells = []
        for node_id in row:
            cluster = schedule.annotated.cluster_of[node_id]
            cells.append(
                f"p{schedule.stage(node_id)}? "
                f"{ddg.node(node_id)}@C{cluster}"
            )
        lines.append(f"{row_index:>4}: " + "  ".join(cells))
    return "\n".join(lines)
