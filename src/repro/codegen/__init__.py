"""Pipelined code emission: flat expansion and predicated kernels."""

from .expand import (
    Instr,
    PipelinedCode,
    expand_pipeline,
    format_kernel_only,
    format_pipelined,
)

__all__ = [
    "Instr",
    "PipelinedCode",
    "expand_pipeline",
    "format_kernel_only",
    "format_pipelined",
]
