"""Independent modulo-schedule validity checking.

Since the introduction of :mod:`repro.lint` this module is a thin
compatibility wrapper: the actual constraint re-derivation lives in the
``SCHED4xx`` rule family (dependence inequalities, per-row resource
capacities via the reservation table's compiled demand profiles,
structural legality of the annotated graph).  ``check_schedule`` runs
those rules and maps each error-severity diagnostic back onto the
historical :class:`Violation` kinds, so every pre-existing caller and
test keeps working unchanged — now with stable diagnostic codes
attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .schedule import Schedule

#: Historical violation kind for each gating schedule-rule code.
_KIND_OF_CODE = {
    "SCHED401": "dependence",
    "SCHED402": "resource",
    "SCHED403": "structure",
    "SCHED404": "structure",
    "SCHED405": "structure",
    "SCHED407": "resource",
    "SCHED408": "resource",
}


@dataclass
class Violation:
    """One broken constraint, with a human-readable description."""

    kind: str
    detail: str
    #: Stable diagnostic code (``SCHED4xx``); empty for hand-built
    #: violations from before the lint subsystem existed.
    code: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.code:
            return f"[{self.kind}:{self.code}] {self.detail}"
        return f"[{self.kind}] {self.detail}"


def check_schedule(schedule: Schedule) -> List[Violation]:
    """Return every constraint violation of ``schedule`` (empty = valid)."""
    from ..lint.engine import LintTarget, lint_target
    from ..lint.registry import LintConfig, all_rules

    # Gating rules only: every SCHED4xx rule that defaults to error
    # severity.  Warnings/infos (pipeline-depth heuristics), other
    # families, and the expensive differential cross-check never made a
    # schedule invalid here.
    keep = set(_KIND_OF_CODE)
    config = LintConfig(
        disable=frozenset(
            rule.code for rule in all_rules() if rule.code not in keep
        )
    )
    report = lint_target(LintTarget(schedule=schedule), config)
    return [
        Violation(
            kind=_KIND_OF_CODE.get(diag.code, "structure"),
            detail=diag.message,
            code=diag.code,
        )
        for diag in report.diagnostics
        if diag.code in keep and diag.is_error
    ]


def assert_valid(schedule: Schedule) -> None:
    """Raise :class:`AssertionError` listing violations, if any."""
    violations = check_schedule(schedule)
    if violations:
        summary = "\n".join(str(v) for v in violations)
        raise AssertionError(
            f"invalid schedule (II={schedule.ii}):\n{summary}"
        )
