"""Independent modulo-schedule validity checking.

The checker re-derives every constraint from scratch (it shares no state
with the scheduler): dependence inequalities under the modulo timing
model, per-row resource capacities, and cross-cluster dataflow legality of
the annotated graph.  Tests and the experiment harness run it on every
schedule produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..machine.machine import ResourceKey
from .schedule import Schedule


@dataclass
class Violation:
    """One broken constraint, with a human-readable description."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


def check_schedule(schedule: Schedule) -> List[Violation]:
    """Return every constraint violation of ``schedule`` (empty = valid)."""
    violations: List[Violation] = []
    annotated = schedule.annotated
    ddg = annotated.ddg
    ii = schedule.ii

    # 1. Dependences: start(dst) >= start(src) + latency(src) - II*distance.
    for edge in ddg.edges:
        lower = (
            schedule.start[edge.src]
            + ddg.latency(edge.src)
            - ii * edge.distance
        )
        if schedule.start[edge.dst] < lower:
            violations.append(
                Violation(
                    kind="dependence",
                    detail=(
                        f"{ddg.node(edge.src)} -> {ddg.node(edge.dst)} "
                        f"(distance {edge.distance}): start "
                        f"{schedule.start[edge.dst]} < required {lower}"
                    ),
                )
            )

    # 2. Resources: per (key, row) usage within per-cycle capacity.
    capacities = annotated.machine.resource_capacities()
    usage: Dict[Tuple[ResourceKey, int], int] = {}
    for node_id in ddg.node_ids:
        row = schedule.row(node_id)
        for key in annotated.resources_of(node_id):
            usage[(key, row)] = usage.get((key, row), 0) + 1
    for (key, row), count in sorted(usage.items(), key=str):
        capacity = capacities.get(key, 0)
        if count > capacity:
            violations.append(
                Violation(
                    kind="resource",
                    detail=(
                        f"resource {key!r} oversubscribed in kernel row "
                        f"{row}: {count} > {capacity}"
                    ),
                )
            )

    # 3. Structural legality of the clustered dataflow.
    try:
        annotated.validate()
    except ValueError as exc:
        violations.append(Violation(kind="structure", detail=str(exc)))

    return violations


def assert_valid(schedule: Schedule) -> None:
    """Raise :class:`AssertionError` listing violations, if any."""
    violations = check_schedule(schedule)
    if violations:
        summary = "\n".join(str(v) for v in violations)
        raise AssertionError(
            f"invalid schedule (II={schedule.ii}):\n{summary}"
        )
