"""Stage scheduling — post-pass register-pressure reduction.

The paper's recommended phase-two pipeline is "an iterative modulo
scheduler combined with a stage scheduler" (Section 1.2, citing
Eichenberger & Davidson, MICRO-28).  A stage scheduler takes a finished
modulo schedule and moves operations by whole multiples of II — their
kernel *row* (and therefore every resource reservation) is unchanged,
only their *stage* moves — to shorten value lifetimes and thus register
requirements.

This implementation is the classic greedy formulation: sweep operations
in decreasing-slack order; for each, compute the feasible stage window
from its dependences (which are invariant under multiple-of-II shifts of
the whole schedule, so the window is exact) and choose the shift that
minimizes the total lifetime of the values it produces and consumes.
Repeat until a sweep makes no improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..ddg.graph import Ddg
from .schedule import Schedule


@dataclass
class StageScheduleResult:
    """Outcome of stage scheduling one modulo schedule."""

    schedule: Schedule
    moves: int
    lifetime_before: int
    lifetime_after: int

    @property
    def improved(self) -> bool:
        """Whether any lifetime shrank."""
        return self.lifetime_after < self.lifetime_before


def total_lifetime(schedule: Schedule) -> int:
    """Sum over produced values of (last use - availability) in cycles.

    This is the quantity stage scheduling minimizes; it is a direct proxy
    for register requirements (MaxLive integrates the same lifetimes).
    """
    ddg = schedule.annotated.ddg
    ii = schedule.ii
    total = 0
    for node in ddg.nodes:
        if not node.produces_value:
            continue
        uses = ddg.out_edges(node.node_id)
        if not uses:
            continue
        birth = schedule.start[node.node_id] + node.latency
        death = max(
            schedule.start[edge.dst] + ii * edge.distance for edge in uses
        )
        total += max(0, death - birth)
    return total


def _stage_window(
    ddg: Ddg, start: Dict[int, int], ii: int, node_id: int
) -> "tuple[int, int]":
    """Inclusive bounds (in stages) the node may shift to.

    An edge ``(u, v, d)`` requires ``start(v) >= start(u) + lat(u) - II*d``;
    shifting ``node`` by ``k * II`` keeps its row, so the bound translates
    into integer stage limits.
    """
    t = start[node_id]
    low_shift = -(10 ** 9)
    high_shift = 10 ** 9
    for edge in ddg.in_edges(node_id):
        if edge.src == node_id:
            continue
        bound = start[edge.src] + ddg.latency(edge.src) - ii * edge.distance
        # t + k*ii >= bound  ->  k >= ceil((bound - t) / ii)
        need = -((t - bound) // ii)
        low_shift = max(low_shift, need)
    for edge in ddg.out_edges(node_id):
        if edge.dst == node_id:
            continue
        bound = start[edge.dst] - ddg.latency(node_id) + ii * edge.distance
        # t + k*ii <= bound  ->  k <= floor((bound - t) / ii)
        allow = (bound - t) // ii
        high_shift = min(high_shift, allow)
    return low_shift, high_shift


def stage_schedule(
    schedule: Schedule, max_sweeps: int = 4
) -> StageScheduleResult:
    """Reduce register lifetimes by stage moves; returns a new schedule.

    The input schedule is not modified.  Kernel rows — and therefore the
    modulo reservation table — are preserved exactly; only stages change,
    so the result is valid whenever the input was.
    """
    ddg = schedule.annotated.ddg
    ii = schedule.ii
    start = dict(schedule.start)
    before = total_lifetime(schedule)

    def lifetime_delta(node_id: int, shift_stages: int) -> int:
        """Change in total lifetime if node moves by shift_stages."""
        delta = 0
        move = shift_stages * ii
        node = ddg.node(node_id)
        if node.produces_value and ddg.out_edges(node_id):
            birth = start[node_id] + node.latency
            death = max(
                start[edge.dst] + ii * edge.distance
                for edge in ddg.out_edges(node_id)
                if edge.dst != node_id
            ) if any(e.dst != node_id for e in ddg.out_edges(node_id)) else birth
            delta += max(0, death - (birth + move)) - max(0, death - birth)
        for edge in ddg.in_edges(node_id):
            if edge.src == node_id:
                continue
            producer = ddg.node(edge.src)
            if not producer.produces_value:
                continue
            uses = [e for e in ddg.out_edges(edge.src) if e.dst != edge.src]
            birth = start[edge.src] + producer.latency
            old_death = max(
                start[e.dst] + ii * e.distance for e in uses
            )
            new_death = max(
                (start[e.dst] + (move if e.dst == node_id else 0))
                + ii * e.distance
                for e in uses
            )
            delta += max(0, new_death - birth) - max(0, old_death - birth)
        return delta

    moves = 0
    # Shifts beyond the schedule's own stage span can never help a
    # lifetime (and unconstrained sources/sinks have infinite windows),
    # so clamp the search to a span-sized neighborhood of the current
    # position.
    span = (max(start.values()) - min(start.values())) // ii + 2
    for _ in range(max_sweeps):
        changed = False
        for node_id in ddg.node_ids:
            low, high = _stage_window(ddg, start, ii, node_id)
            low = max(low, -span)
            high = min(high, span)
            if low > 0 or high < 0 or (low == 0 and high == 0):
                continue  # no legal move (or only the identity)
            best_shift, best_delta = 0, 0
            for shift in range(low, high + 1):
                if shift == 0:
                    continue
                delta = lifetime_delta(node_id, shift)
                if delta < best_delta:
                    best_shift, best_delta = shift, delta
            if best_shift != 0:
                start[node_id] += best_shift * ii
                moves += 1
                changed = True
        if not changed:
            break

    # Normalize to non-negative starts (multiple-of-II shift).
    lowest = min(start.values())
    if lowest < 0:
        bump = ((-lowest + ii - 1) // ii) * ii
        start = {node_id: t + bump for node_id, t in start.items()}
    improved = Schedule(
        annotated=schedule.annotated, ii=ii, start=start
    )
    return StageScheduleResult(
        schedule=improved,
        moves=moves,
        lifetime_before=before,
        lifetime_after=total_lifetime(improved),
    )
