"""Schedule-priority metrics: ASAP, ALAP, depth, height, mobility.

All metrics are II-aware: a dependence edge ``(u, v)`` with distance ``d``
contributes weight ``latency(u) - II * d``, so loop-carried edges relax
rather than lengthen paths once ``II >= RecMII``.  The fixpoint iteration
converges exactly when no cycle has positive weight, i.e. whenever the
caller respects ``II >= RecMII``; a guard raises otherwise instead of
looping forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..ddg.graph import Ddg


class PriorityDivergenceError(RuntimeError):
    """Raised when metrics are requested at an II below RecMII."""


def _relax_forward(ddg: Ddg, ii: int) -> Dict[int, int]:
    """Longest path *into* each node (its earliest start), a.k.a. ASAP."""
    view = ddg.view()
    edges = view.edge_array
    asap = {node_id: 0 for node_id in view.node_ids}
    for _ in range(len(asap) + 1):
        changed = False
        for src, dst, latency, distance in edges:
            candidate = asap[src] + latency - ii * distance
            if candidate > asap[dst]:
                asap[dst] = candidate
                changed = True
        if not changed:
            return asap
    raise PriorityDivergenceError(
        f"ASAP relaxation diverges at II={ii}: II is below RecMII"
    )


def _relax_backward(ddg: Ddg, ii: int) -> Dict[int, int]:
    """Longest path *out of* each node including its own latency (height)."""
    view = ddg.view()
    edges = view.edge_array
    height = dict(view.latency)
    for _ in range(len(height) + 1):
        changed = False
        for src, dst, latency, distance in edges:
            candidate = height[dst] + latency - ii * distance
            if candidate > height[src]:
                height[src] = candidate
                changed = True
        if not changed:
            return height
    raise PriorityDivergenceError(
        f"height relaxation diverges at II={ii}: II is below RecMII"
    )


@dataclass(frozen=True)
class PriorityMetrics:
    """Per-node scheduling metrics at one candidate II."""

    ii: int
    asap: Dict[int, int]
    alap: Dict[int, int]
    height: Dict[int, int]
    critical_path: int

    def depth(self, node_id: int) -> int:
        """Longest path from any source to the node's issue cycle."""
        return self.asap[node_id]

    def mobility(self, node_id: int) -> int:
        """Scheduling freedom: ``ALAP - ASAP`` (0 on the critical path)."""
        return self.alap[node_id] - self.asap[node_id]


def compute_metrics(ddg: Ddg, ii: int) -> PriorityMetrics:
    """Compute ASAP/ALAP/height metrics for every node of ``ddg``.

    ``critical_path`` is the length (in cycles) of the longest dependence
    chain through one iteration at this II; ALAP is derived from it so
    that ``ALAP >= ASAP`` for every node.
    """
    if len(ddg) == 0:
        return PriorityMetrics(ii=ii, asap={}, alap={}, height={},
                               critical_path=0)
    view = ddg.view()
    asap = _relax_forward(ddg, ii)
    height = _relax_backward(ddg, ii)
    critical_path = max(
        asap[node_id] + view.latency[node_id] for node_id in view.node_ids
    )
    # ALAP(v) = latest start keeping the critical-path length:
    # critical_path - height(v) places v so its downstream chain just fits.
    alap = {
        node_id: critical_path - height[node_id]
        for node_id in view.node_ids
    }
    return PriorityMetrics(
        ii=ii,
        asap=asap,
        alap=alap,
        height=height,
        critical_path=critical_path,
    )
