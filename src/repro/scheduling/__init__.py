"""Modulo scheduling: priorities, SMS ordering, iterative scheduler."""

from .modulo import (
    DEFAULT_BUDGET_RATIO,
    SchedulerStats,
    modulo_schedule,
    schedule_with_ii_search,
)
from .priority import PriorityDivergenceError, PriorityMetrics, compute_metrics
from .schedule import Schedule
from .stage import StageScheduleResult, stage_schedule, total_lifetime
from .swing import assignment_order, ordering_sets, swing_order
from .verify import Violation, assert_valid, check_schedule

__all__ = [
    "DEFAULT_BUDGET_RATIO",
    "PriorityDivergenceError",
    "PriorityMetrics",
    "Schedule",
    "SchedulerStats",
    "StageScheduleResult",
    "Violation",
    "assert_valid",
    "assignment_order",
    "check_schedule",
    "compute_metrics",
    "modulo_schedule",
    "ordering_sets",
    "schedule_with_ii_search",
    "stage_schedule",
    "swing_order",
    "total_lifetime",
]
