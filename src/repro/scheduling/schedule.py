"""Modulo schedule records.

A modulo schedule maps each operation to an absolute start cycle; the
software-pipelined kernel has length II, operation ``op`` occupies kernel
row ``start[op] % II`` in stage ``start[op] // II``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ddg.transform import AnnotatedDdg


@dataclass
class Schedule:
    """A complete modulo schedule of one annotated loop."""

    annotated: AnnotatedDdg
    ii: int
    start: Dict[int, int]

    def __post_init__(self) -> None:
        missing = set(self.annotated.ddg.node_ids) - set(self.start)
        if missing:
            raise ValueError(f"schedule misses nodes {sorted(missing)}")

    def row(self, node_id: int) -> int:
        """Kernel row (cycle within the II-long kernel) of a node."""
        return self.start[node_id] % self.ii

    def stage(self, node_id: int) -> int:
        """Pipeline stage of a node."""
        return self.start[node_id] // self.ii

    @property
    def stage_count(self) -> int:
        """Number of kernel stages (depth of the software pipeline)."""
        return max(self.stage(n) for n in self.start) + 1

    @property
    def makespan(self) -> int:
        """Cycles from the first issue to the last completion of one
        iteration."""
        ddg = self.annotated.ddg
        return max(
            self.start[n] + ddg.latency(n) for n in self.start
        ) - min(self.start.values())

    def kernel_rows(self) -> List[List[int]]:
        """Node ids per kernel row, ordered by row then start cycle."""
        rows: List[List[int]] = [[] for _ in range(self.ii)]
        for node_id in sorted(self.start, key=lambda n: self.start[n]):
            rows[self.row(node_id)].append(node_id)
        return rows

    def format_kernel(self) -> str:
        """Human-readable kernel: one line per row, ops with clusters."""
        ddg = self.annotated.ddg
        lines = []
        for row_index, row in enumerate(self.kernel_rows()):
            cells = []
            for node_id in row:
                node = ddg.node(node_id)
                cluster = self.annotated.cluster_of[node_id]
                cells.append(f"{node}@C{cluster}(s{self.stage(node_id)})")
            lines.append(f"row {row_index:>3}: " + "  ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(ii={self.ii}, ops={len(self.start)}, "
            f"stages={self.stage_count})"
        )
