"""Iterative modulo scheduling (Rau, MICRO-27 1994).

This is the paper's phase two: a traditional, cluster-oblivious modulo
scheduler.  It sees only an annotated DDG whose nodes each occupy a fixed
set of machine resource pools — clustering shows up purely as which pools
a node needs, exactly as the paper intends ("any traditional modulo
scheduling algorithm, having no knowledge of clustering, can produce a
valid and efficient schedule").

Algorithm (Rau's formulation):

1. Order operations by priority (height-based; we use the SMS order,
   which the paper's Section 5 reports using as well).
2. Repeatedly take the highest-priority unscheduled op; compute its
   earliest start from its *scheduled* predecessors; scan the II-wide
   window for a slot with free resources.
3. If no slot is free, *force* placement (at the earliest start, or just
   past the op's previous placement to guarantee progress) and displace
   every op that conflicts in resources or violates a dependence to the
   newly placed op.
4. A budget of ``budget_ratio × n_ops`` placements bounds the effort at
   one II; exhausting it means failure at this II.

Hot-path structure: the next op comes off a rank-keyed binary heap
(displaced ops are pushed back; an op's rank never changes, so the heap
invariant is exact and selection matches a full min-scan bit for bit),
dependence bounds are computed from the compiled DDG view's pre-extracted
edge specs, and resource probes use demand profiles pre-compiled against
the reservation table once per attempt (see
:meth:`repro.mrt.table.ModuloReservationTable.compile_demand`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..ddg.mii import rec_mii_exceeds
from ..ddg.transform import AnnotatedDdg
from ..mrt.table import ModuloReservationTable
from ..obs.trace import count as obs_count, span as obs_span
from .priority import compute_metrics
from .schedule import Schedule
from .swing import assignment_order

#: Default placement budget multiplier (Rau reports 3–6 works well).
DEFAULT_BUDGET_RATIO = 6


@dataclass
class SchedulerStats:
    """Bookkeeping from one scheduling attempt."""

    ii: int
    placements: int = 0
    evictions: int = 0
    succeeded: bool = False


def modulo_schedule(
    annotated: AnnotatedDdg,
    ii: int,
    budget_ratio: int = DEFAULT_BUDGET_RATIO,
    stats: Optional[SchedulerStats] = None,
) -> Optional[Schedule]:
    """Attempt a modulo schedule of ``annotated`` at initiation interval
    ``ii``; returns None when the placement budget runs out."""
    ddg = annotated.ddg
    if len(ddg) == 0:
        raise ValueError("cannot schedule an empty graph")
    if rec_mii_exceeds(ddg, ii):
        # Copies inserted on a recurrence raised RecMII past this II
        # (the paper's Observation Two): provably unschedulable here.
        obs_count("sched.recmii_rejections")
        return None
    with obs_span("schedule", ii=ii) as sched_span:
        schedule = _modulo_schedule(
            annotated, ii, budget_ratio, stats, ddg
        )
        sched_span.note(succeeded=schedule is not None)
    return schedule


def _modulo_schedule(
    annotated: AnnotatedDdg,
    ii: int,
    budget_ratio: int,
    stats: Optional[SchedulerStats],
    ddg,
) -> Optional[Schedule]:
    """The scheduling loop proper (inside the ``schedule`` span)."""
    view = ddg.view()
    order = assignment_order(ddg, ii)
    rank = {node_id: index for index, node_id in enumerate(order)}
    resources = {
        node_id: annotated.resources_of(node_id) for node_id in view.node_ids
    }
    metrics = compute_metrics(ddg, ii)
    latency = view.latency
    in_specs = view.in_specs
    out_specs = view.out_specs

    mrt = ModuloReservationTable(annotated.machine, ii)
    demand = {
        node_id: mrt.compile_demand(keys)
        for node_id, keys in resources.items()
    }
    start: Dict[int, int] = {}
    previous_start: Dict[int, int] = {}
    unscheduled: Set[int] = set(view.node_ids)
    budget = max(budget_ratio * len(ddg), len(ddg) + 1)
    # Rank-keyed ready heap.  ``order`` lists ranks 0..n-1 ascending, so
    # the initial list is already a valid heap.  Displacement pushes the
    # victim back; membership in ``unscheduled`` filters the (defensive)
    # possibility of stale entries.
    ready = [(rank[node_id], node_id) for node_id in order]

    def earliest_start(node_id: int) -> Optional[int]:
        """Tightest lower bound from *scheduled* predecessors."""
        bound: Optional[int] = None
        for src, src_latency, distance in in_specs[node_id]:
            if src in start and src != node_id:
                candidate = start[src] + src_latency - ii * distance
                if bound is None or candidate > bound:
                    bound = candidate
        return bound

    def latest_start(node_id: int) -> Optional[int]:
        """Tightest upper bound from *scheduled* successors."""
        bound: Optional[int] = None
        own_latency = latency[node_id]
        for dst, distance in out_specs[node_id]:
            if dst in start and dst != node_id:
                candidate = start[dst] - own_latency + ii * distance
                if bound is None or candidate < bound:
                    bound = candidate
        return bound

    def displace(node_id: int) -> None:
        mrt.remove(node_id)
        del start[node_id]
        unscheduled.add(node_id)
        heapq.heappush(ready, (rank[node_id], node_id))
        obs_count("sched.backtracks")
        if stats is not None:
            stats.evictions += 1

    while unscheduled:
        if budget <= 0:
            obs_count("sched.budget_exhausted")
            return None
        budget -= 1
        while True:
            _, node_id = heapq.heappop(ready)
            obs_count("sched.heap_pops")
            if node_id in unscheduled:
                break
        profile = demand[node_id]
        estart = earliest_start(node_id)
        lstart = latest_start(node_id)

        # Bidirectional window (Swing Modulo Scheduling): scan upward from
        # scheduled predecessors, downward toward scheduled successors,
        # and from ASAP when the node has no scheduled neighbors yet.
        if estart is not None:
            window = range(estart, min(
                estart + ii,
                (lstart + 1) if lstart is not None else estart + ii,
            ))
            forced_time = estart
        elif lstart is not None:
            window = range(lstart, lstart - ii, -1)
            forced_time = lstart
        else:
            base = metrics.asap[node_id]
            window = range(base, base + ii)
            forced_time = base

        chosen: Optional[int] = None
        probes = 0
        for t in window:
            probes += 1
            if mrt.probe(profile, t):
                chosen = t
                break
        obs_count("sched.slot_probes", probes)
        if chosen is None:
            obs_count("sched.forced_placements")
            chosen = forced_time
            if node_id in previous_start:
                chosen = max(forced_time, previous_start[node_id] + 1)

        # Displace resource conflicts at the chosen row.
        for victim in list(mrt.conflicting_ops(resources[node_id], chosen)):
            displace(victim)
        mrt.place(node_id, resources[node_id], chosen, check=False)
        start[node_id] = chosen
        previous_start[node_id] = chosen
        unscheduled.discard(node_id)
        obs_count("sched.placements")
        if stats is not None:
            stats.placements += 1

        # Displace scheduled neighbors whose dependence the placement
        # violates (successors too early, predecessors too late — the
        # latter can happen after a forced or downward placement).
        own_latency = latency[node_id]
        for dst, distance in out_specs[node_id]:
            if dst in start and dst != node_id:
                needed = chosen + own_latency - ii * distance
                if start[dst] < needed:
                    displace(dst)
        for src, src_latency, distance in in_specs[node_id]:
            if src in start and src != node_id:
                limit = chosen - src_latency + ii * distance
                if start[src] > limit:
                    displace(src)

    # Normalize to non-negative cycles with a multiple-of-II shift so
    # kernel rows (start mod II) are unchanged.
    lowest = min(start.values())
    if lowest < 0:
        shift = ((-lowest + ii - 1) // ii) * ii
        start = {node_id: t + shift for node_id, t in start.items()}
    schedule = Schedule(annotated=annotated, ii=ii, start=start)
    if stats is not None:
        stats.succeeded = True
    return schedule


def schedule_with_ii_search(
    annotated: AnnotatedDdg,
    min_ii: int,
    max_ii: int,
    budget_ratio: int = DEFAULT_BUDGET_RATIO,
) -> Optional[Schedule]:
    """Schedule at the smallest feasible II in ``[min_ii, max_ii]``.

    This is the classic modulo scheduling driver for the unified baseline;
    clustered machines instead re-run *assignment* at each II (paper
    Figure 5), see :mod:`repro.core.driver`.
    """
    for ii in range(max(1, min_ii), max_ii + 1):
        schedule = modulo_schedule(annotated, ii, budget_ratio=budget_ratio)
        if schedule is not None:
            return schedule
    return None
