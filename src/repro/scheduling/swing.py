"""Swing Modulo Scheduling node ordering (Llosa et al., PACT'96).

The SMS ordering lists each node, whenever possible, only after *all* of
its predecessors or *all* of its successors are listed.  The paper reuses
this ordering inside the cluster assignment phase (Section 4.1) because it
minimizes the chance of assigning both a node's predecessors and its
successors to clusters before the node itself — the situation that forces
unavoidable copies.

The algorithm works over an ordered list of node *sets* (here: non-trivial
SCCs by decreasing RecMII, then all remaining nodes) and sweeps each set
alternately top-down (after predecessors) and bottom-up (after
successors):

* top-down picks, among ready candidates, the node with the greatest
  height (most critical downstream chain), tie-broken by lowest mobility;
* bottom-up symmetric with depth.

When a set has no ordered neighbors yet, the sweep starts top-down from
the set's highest node (the published algorithm leaves this seed choice
loose; any critical-source seed preserves its guarantees).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..ddg.graph import Ddg
from ..ddg.scc import SccPartition, find_sccs
from .priority import PriorityMetrics, compute_metrics

TOP_DOWN = "top-down"
BOTTOM_UP = "bottom-up"


def ordering_sets(ddg: Ddg, partition: SccPartition) -> List[Set[int]]:
    """The ordered list of node sets the paper's Section 4.1 prescribes.

    Non-trivial SCCs in decreasing criticality, then one final set with
    every remaining node.  Empty sets are omitted.
    """
    sets: List[Set[int]] = [set(scc.nodes) for scc in partition.sccs]
    rest = {
        node_id for node_id in ddg.node_ids
        if not partition.in_scc(node_id)
    }
    if rest:
        sets.append(rest)
    return sets


def _pick(
    candidates: Iterable[int],
    primary: "dict[int, int]",
    metrics: PriorityMetrics,
) -> int:
    """Highest ``primary`` value; ties: lowest mobility, then lowest id."""
    return min(
        candidates,
        key=lambda n: (-primary[n], metrics.mobility(n), n),
    )


def swing_order(
    ddg: Ddg,
    sets: Sequence[Set[int]],
    metrics: PriorityMetrics,
) -> List[int]:
    """Order all nodes of ``ddg`` given priority ``sets`` and metrics."""
    view = ddg.view()
    successors = view.successors
    predecessors = view.predecessors
    order: List[int] = []
    ordered: Set[int] = set()

    for node_set in sets:
        pending = set(node_set) - ordered
        if not pending:
            continue
        # Seed: nodes of this set adjacent to the already-ordered prefix.
        ready_after_preds = {
            n for n in pending
            if any(p in ordered for p in predecessors[n])
        }
        ready_before_succs = {
            n for n in pending
            if any(s in ordered for s in successors[n])
        }
        if ready_after_preds:
            frontier, direction = ready_after_preds, TOP_DOWN
        elif ready_before_succs:
            frontier, direction = ready_before_succs, BOTTOM_UP
        else:
            seed = _pick(pending, metrics.height, metrics)
            frontier, direction = {seed}, TOP_DOWN

        while pending:
            while frontier:
                if direction == TOP_DOWN:
                    node = _pick(frontier, metrics.height, metrics)
                else:
                    node = _pick(frontier, metrics.asap, metrics)
                order.append(node)
                ordered.add(node)
                pending.discard(node)
                frontier.discard(node)
                if direction == TOP_DOWN:
                    grown = successors[node]
                else:
                    grown = predecessors[node]
                frontier.update(n for n in grown if n in pending)
            # Swing: reverse direction, restart from the other frontier.
            if direction == TOP_DOWN:
                direction = BOTTOM_UP
                frontier = {
                    n for n in pending
                    if any(s in ordered for s in successors[n])
                }
            else:
                direction = TOP_DOWN
                frontier = {
                    n for n in pending
                    if any(p in ordered for p in predecessors[n])
                }
            if not frontier and pending:
                # Disconnected remainder of the set: reseed.
                seed = _pick(pending, metrics.height, metrics)
                frontier, direction = {seed}, TOP_DOWN
    return order


def assignment_order(ddg: Ddg, ii: int) -> List[int]:
    """The paper's full assignment order for one loop at candidate II.

    SCC sets by decreasing RecMII first, remaining nodes last, SMS order
    within each set (Section 4.1).
    """
    partition = find_sccs(ddg)
    metrics = compute_metrics(ddg, max(ii, 1))
    return swing_order(ddg, ordering_sets(ddg, partition), metrics)
