"""The paper's machine configurations (Section 2.1 and Section 6).

Builders for every configuration the evaluation sweeps over:

* bused machines with N clusters of 4 GP units (Figures 12–17, Table 3),
* bused machines with N clusters of 4 FS units — 1 memory, 2 integer,
  1 float (Figures 18–19),
* the 2×2 grid of 3-FS-unit clusters with point-to-point links
  (Section 6, "grid" result),
* the equally wide unified machines used as the comparison baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .cluster import ClusterSpec
from .interconnect import (
    BusInterconnect,
    NoInterconnect,
    PointToPointInterconnect,
    grid_links,
)
from .machine import Machine
from .units import (
    PAPER_FS_MIX,
    PAPER_GP_MIX,
    PAPER_GRID_MIX,
    UnitMix,
    fs_units,
    gp_units,
)


def bused_machine(
    n_clusters: int,
    units: UnitMix,
    buses: int,
    ports: int,
    name: str = "",
) -> Machine:
    """A machine of ``n_clusters`` identical clusters on ``buses`` buses.

    ``ports`` is the number of bus read ports *and* the number of bus
    write ports per cluster (the paper always varies them together).
    """
    if n_clusters < 2:
        raise ValueError("a bused clustered machine needs >= 2 clusters")
    clusters = tuple(
        ClusterSpec(index=i, units=units, read_ports=ports, write_ports=ports)
        for i in range(n_clusters)
    )
    return Machine(
        clusters=clusters,
        interconnect=BusInterconnect(bus_count=buses),
        name=name or f"{n_clusters}cl-b{buses}-p{ports}",
    )


def two_cluster_gp(buses: int = 2, ports: int = 1) -> Machine:
    """Two clusters of 4 GP units (Figures 12, 14, 15 baseline: 2 buses,
    1 port)."""
    return bused_machine(
        2, PAPER_GP_MIX, buses, ports, name=f"2cl-gp-b{buses}-p{ports}"
    )


def four_cluster_gp(buses: int = 4, ports: int = 2) -> Machine:
    """Four clusters of 4 GP units (Figures 13, 16, 17 baseline: 4 buses,
    2 ports)."""
    return bused_machine(
        4, PAPER_GP_MIX, buses, ports, name=f"4cl-gp-b{buses}-p{ports}"
    )


def n_cluster_gp(n_clusters: int, buses: int, ports: int) -> Machine:
    """N clusters of 4 GP units (Table 3 scaling study)."""
    return bused_machine(
        n_clusters,
        PAPER_GP_MIX,
        buses,
        ports,
        name=f"{n_clusters}cl-gp-b{buses}-p{ports}",
    )


def two_cluster_fs(buses: int = 2, ports: int = 1) -> Machine:
    """Two clusters of 4 FS units (Figure 18 baseline: 2 buses, 1 port)."""
    return bused_machine(
        2, PAPER_FS_MIX, buses, ports, name=f"2cl-fs-b{buses}-p{ports}"
    )


def four_cluster_fs(buses: int = 4, ports: int = 2) -> Machine:
    """Four clusters of 4 FS units (Figure 19 baseline: 4 buses, 2 ports)."""
    return bused_machine(
        4, PAPER_FS_MIX, buses, ports, name=f"4cl-fs-b{buses}-p{ports}"
    )


def four_cluster_grid(ports: int = 2) -> Machine:
    """The 2×2 grid: four clusters of 3 FS units, point-to-point links.

    Each cluster connects only to its horizontal and vertical neighbor
    (Figure 4).  The paper does not state grid port counts; we default to
    2 read / 2 write ports per cluster — one per incident link — so the
    fabric, not the ports, is the binding constraint, matching the paper's
    emphasis on "limited communication, no buses for broadcasting".
    """
    clusters = tuple(
        ClusterSpec(
            index=i, units=PAPER_GRID_MIX, read_ports=ports, write_ports=ports
        )
        for i in range(4)
    )
    return Machine(
        clusters=clusters,
        interconnect=PointToPointInterconnect(grid_links(2, 2)),
        name=f"4cl-grid-p{ports}",
    )


def ring_machine(
    n_clusters: int, units: UnitMix, ports: int = 2, name: str = ""
) -> Machine:
    """N clusters on a bidirectional point-to-point ring.

    Not one of the paper's three main organizations, but exactly the
    kind of "arbitrary numbers of point-to-point connections" its
    Section 2.1 says the technique covers; worst-case copy chains are
    ``floor(N/2)`` hops long.
    """
    if n_clusters < 3:
        raise ValueError("a ring needs >= 3 clusters")
    clusters = tuple(
        ClusterSpec(index=i, units=units, read_ports=ports,
                    write_ports=ports)
        for i in range(n_clusters)
    )
    links = [(i, (i + 1) % n_clusters) for i in range(n_clusters)]
    return Machine(
        clusters=clusters,
        interconnect=PointToPointInterconnect(links),
        name=name or f"{n_clusters}cl-ring-p{ports}",
    )


def heterogeneous_gp(
    widths: List[int], buses: int, ports: int, name: str = ""
) -> Machine:
    """A bused machine whose clusters have *different* GP widths.

    The paper notes its techniques cover clusters "homogeneous or
    heterogeneous in the types of function units they contain"
    (Section 2.1); this builder exercises the heterogeneous case (the
    selection heuristic's free-resource and prediction terms naturally
    handle unequal clusters).
    """
    if len(widths) < 2:
        raise ValueError("a clustered machine needs >= 2 clusters")
    clusters = tuple(
        ClusterSpec(
            index=i, units=gp_units(width),
            read_ports=ports, write_ports=ports,
        )
        for i, width in enumerate(widths)
    )
    return Machine(
        clusters=clusters,
        interconnect=BusInterconnect(bus_count=buses),
        name=name or "het-" + "x".join(str(w) for w in widths),
    )


def unified_gp(width: int) -> Machine:
    """A unified GP machine of the given total width."""
    cluster = ClusterSpec(
        index=0, units=gp_units(width), read_ports=0, write_ports=0
    )
    return Machine(
        clusters=(cluster,),
        interconnect=NoInterconnect(),
        name=f"unified-gp{width}",
    )


def unified_fs(memory: int, integer: int, floating: int) -> Machine:
    """A unified FS machine with the given per-class unit counts."""
    cluster = ClusterSpec(
        index=0,
        units=fs_units(memory, integer, floating),
        read_ports=0,
        write_ports=0,
    )
    return Machine(
        clusters=(cluster,),
        interconnect=NoInterconnect(),
        name=f"unified-fs-m{memory}i{integer}f{floating}",
    )


#: Table 3 sweet spots: (clusters, buses, ports) per the paper.
TABLE3_CONFIGS: List[Tuple[int, int, int]] = [
    (2, 2, 1),
    (4, 4, 2),
    (6, 6, 3),
    (8, 7, 3),
]


#: The named machine presets shared by the CLI (``--machine``) and the
#: compile service's warm workers (:mod:`repro.service.tasks` builds
#: every preset once at worker start so requests that name a preset
#: never pay construction cost).  Builders take no arguments.
STANDARD_PRESETS: Dict[str, Callable[[], Machine]] = {
    "2gp": two_cluster_gp,
    "4gp": four_cluster_gp,
    "2fs": two_cluster_fs,
    "4fs": four_cluster_fs,
    "grid": four_cluster_grid,
    "6gp": lambda: n_cluster_gp(6, 6, 3),
    "8gp": lambda: n_cluster_gp(8, 7, 3),
}
