"""Cluster specifications.

A *cluster* pairs a register file with a group of function units
(paper Figure 1).  By default the register file itself is unbounded —
the paper evaluates II degradation, not register pressure — but a
finite ``register_file`` size may be declared so the static register-
pressure rules (``DF704``) can prove a loop unschedulable.  The ports
that connect the register file to the inter-cluster communication
fabric are explicit, counted resources:

* ``read_ports`` — how many values the cluster can send per cycle,
* ``write_ports`` — how many values the cluster can receive per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ddg.opcodes import FuClass
from .units import UnitMix


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one cluster."""

    index: int
    units: UnitMix
    read_ports: int = 1
    write_ports: int = 1
    #: Registers in this cluster's file; 0 means unbounded (the paper's
    #: model).  Finite sizes arm the DF704 register-pressure rule.
    register_file: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("cluster index must be >= 0")
        if self.read_ports < 0 or self.write_ports < 0:
            raise ValueError("port counts must be >= 0")
        if self.register_file < 0:
            raise ValueError("register_file must be >= 0 (0 = unbounded)")

    @property
    def width(self) -> int:
        """Issue width of this cluster."""
        return self.units.width

    def issue_capacity(self, fu_class: FuClass) -> int:
        """Units per cycle able to execute ``fu_class`` operations."""
        return self.units.capacity(fu_class)

    @property
    def name(self) -> str:
        """Display name, e.g. ``C0``."""
        return f"C{self.index}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "GP" if self.units.general_purpose else "FS"
        return (
            f"{self.name}[{kind}x{self.width}, "
            f"r{self.read_ports}/w{self.write_ports}]"
        )
