"""Clustered VLIW machine models: clusters, units, interconnects."""

from .cluster import ClusterSpec
from .interconnect import (
    BusInterconnect,
    Interconnect,
    NoInterconnect,
    PointToPointInterconnect,
    grid_links,
)
from .machine import Machine, ResourceKey
from .presets import (
    STANDARD_PRESETS,
    TABLE3_CONFIGS,
    bused_machine,
    four_cluster_fs,
    four_cluster_gp,
    four_cluster_grid,
    heterogeneous_gp,
    n_cluster_gp,
    ring_machine,
    two_cluster_fs,
    two_cluster_gp,
    unified_fs,
    unified_gp,
)
from .units import (
    PAPER_FS_MIX,
    PAPER_GP_MIX,
    PAPER_GRID_MIX,
    UnitMix,
    fs_units,
    gp_units,
)

__all__ = [
    "BusInterconnect",
    "ClusterSpec",
    "Interconnect",
    "Machine",
    "NoInterconnect",
    "PAPER_FS_MIX",
    "PAPER_GP_MIX",
    "PAPER_GRID_MIX",
    "PointToPointInterconnect",
    "ResourceKey",
    "STANDARD_PRESETS",
    "TABLE3_CONFIGS",
    "UnitMix",
    "bused_machine",
    "four_cluster_fs",
    "four_cluster_gp",
    "four_cluster_grid",
    "fs_units",
    "gp_units",
    "grid_links",
    "heterogeneous_gp",
    "n_cluster_gp",
    "ring_machine",
    "two_cluster_fs",
    "two_cluster_gp",
    "unified_fs",
    "unified_gp",
]
