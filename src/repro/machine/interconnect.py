"""Inter-cluster communication fabrics.

The paper models two fabrics (Section 2.1):

* **Buses** — a copy reserves one bus for one cycle and *broadcasts*: the
  value may be written to any number of clusters that have a free write
  port in that cycle.  The result of an operation therefore needs to be
  communicated at most once, no matter how many clusters consume it.
* **Point-to-point links** — a copy reserves the entire dedicated
  connection between two neighboring clusters for one cycle and delivers
  to exactly that neighbor.  Reaching a non-neighbor requires a chain of
  copies routed hop by hop (e.g. the diagonal of the 2×2 grid takes two
  hops).

Both fabrics expose the same small protocol used by the assignment phase
and the resource tables:

* ``broadcast`` — whether one copy can serve several target clusters,
* ``reachable(src, dst)`` — whether a single copy can move a value,
* ``route(src, dst)`` — the cluster path a value must travel,
* ``channel_resources()`` — the shared channel pools and their per-cycle
  capacities,
* ``channel_for_hop(src, dst)`` — which pool one hop consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

import networkx as nx


class Interconnect:
    """Abstract inter-cluster fabric."""

    #: Whether one copy reaches multiple targets (bus broadcast).
    broadcast: bool = False

    def reachable(self, src: int, dst: int) -> bool:
        """True when a single copy can move a value from src to dst."""
        raise NotImplementedError

    def route(self, src: int, dst: int) -> List[int]:
        """Cluster sequence from ``src`` to ``dst`` inclusive.

        ``route(a, a) == [a]``.  Raises :class:`ValueError` when no path
        exists.
        """
        raise NotImplementedError

    def channel_resources(self) -> Dict[Hashable, int]:
        """Per-cycle capacity of every shared channel pool."""
        raise NotImplementedError

    def channel_for_hop(self, src: int, dst: int) -> Hashable:
        """The channel pool one single-hop copy from src to dst consumes."""
        raise NotImplementedError

    def hop_distance(self, src: int, dst: int) -> int:
        """Number of copies needed to move a value from src to dst."""
        return len(self.route(src, dst)) - 1


@dataclass(frozen=True)
class BusInterconnect(Interconnect):
    """``bus_count`` shared broadcast buses connecting every cluster."""

    bus_count: int
    broadcast: bool = True

    def __post_init__(self) -> None:
        if self.bus_count < 1:
            raise ValueError("a bused machine needs at least one bus")

    def reachable(self, src: int, dst: int) -> bool:
        return True

    def route(self, src: int, dst: int) -> List[int]:
        if src == dst:
            return [src]
        return [src, dst]

    def channel_resources(self) -> Dict[Hashable, int]:
        return {"bus": self.bus_count}

    def channel_for_hop(self, src: int, dst: int) -> Hashable:
        return "bus"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.bus_count} bus(es)"


class PointToPointInterconnect(Interconnect):
    """Dedicated bidirectional links between specific cluster pairs.

    A copy consumes the entire link for a cycle (paper Section 2.1), so a
    link is one pool of per-cycle capacity 1 regardless of direction.
    """

    broadcast = False

    def __init__(self, links: Sequence[Tuple[int, int]]) -> None:
        if not links:
            raise ValueError("a point-to-point fabric needs links")
        normalized: List[FrozenSet[int]] = []
        for a, b in links:
            if a == b:
                raise ValueError(f"self-link on cluster {a}")
            link = frozenset((a, b))
            if link not in normalized:
                normalized.append(link)
        self._links = normalized
        self._graph = nx.Graph()
        for link in normalized:
            a, b = sorted(link)
            self._graph.add_edge(a, b)
        self._routes: Dict[Tuple[int, int], List[int]] = {}

    @property
    def links(self) -> List[Tuple[int, int]]:
        """All links as sorted cluster-index pairs."""
        return [tuple(sorted(link)) for link in self._links]

    def reachable(self, src: int, dst: int) -> bool:
        return frozenset((src, dst)) in self._links

    def route(self, src: int, dst: int) -> List[int]:
        if src == dst:
            return [src]
        key = (src, dst)
        if key not in self._routes:
            try:
                path = nx.shortest_path(self._graph, src, dst)
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise ValueError(
                    f"no point-to-point route from cluster {src} to {dst}"
                ) from exc
            self._routes[key] = list(path)
        return list(self._routes[key])

    def channel_resources(self) -> Dict[Hashable, int]:
        return {("link",) + tuple(sorted(link)): 1 for link in self._links}

    def channel_for_hop(self, src: int, dst: int) -> Hashable:
        link = frozenset((src, dst))
        if link not in self._links:
            raise ValueError(f"no link between clusters {src} and {dst}")
        return ("link",) + tuple(sorted(link))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{len(self._links)} point-to-point link(s)"


@dataclass(frozen=True)
class NoInterconnect(Interconnect):
    """Fabric of a unified (single-cluster) machine: nothing to cross."""

    broadcast: bool = False

    def reachable(self, src: int, dst: int) -> bool:
        return src == dst

    def route(self, src: int, dst: int) -> List[int]:
        if src != dst:
            raise ValueError("unified machine has a single cluster")
        return [src]

    def channel_resources(self) -> Dict[Hashable, int]:
        return {}

    def channel_for_hop(self, src: int, dst: int) -> Hashable:
        raise ValueError("unified machine never copies between clusters")


def grid_links(rows: int, cols: int) -> List[Tuple[int, int]]:
    """Links of a ``rows × cols`` mesh, clusters numbered row-major.

    The paper's 4-cluster grid is ``grid_links(2, 2)``: every cluster is
    connected to its horizontal and vertical neighbor.
    """
    links: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            here = r * cols + c
            if c + 1 < cols:
                links.append((here, here + 1))
            if r + 1 < rows:
                links.append((here, here + cols))
    return links
