"""Function-unit mixes for clusters.

The paper studies two unit disciplines (Section 2.1):

* **General purpose (GP)** — every unit executes every opcode; a cluster is
  characterized only by its width (4 GP units per cluster in the bused
  configurations).
* **Fully specified (FS)** — units are dedicated: the bused FS clusters have
  one memory, two integer, and one floating-point unit; the grid clusters
  have one of each.

Units are fully pipelined: an operation occupies one issue slot on one unit
in its issue cycle regardless of latency, matching the paper's
``ResMII = ops / width`` accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..ddg.opcodes import FuClass

#: FU classes that correspond to real units (copies use none).
REAL_FU_CLASSES = (FuClass.MEMORY, FuClass.INTEGER, FuClass.FLOAT)


@dataclass(frozen=True)
class UnitMix:
    """The function units inside one cluster.

    For a GP mix, ``gp_width`` holds the number of interchangeable units
    and ``per_class`` is empty.  For an FS mix, ``gp_width`` is 0 and
    ``per_class`` maps each :class:`FuClass` to its unit count.
    """

    gp_width: int = 0
    per_class: "Dict[FuClass, int]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.gp_width < 0:
            raise ValueError("gp_width must be >= 0")
        if self.gp_width and self.per_class:
            raise ValueError("a mix is either GP or FS, not both")
        for fu_class, count in self.per_class.items():
            if fu_class not in REAL_FU_CLASSES:
                raise ValueError(f"{fu_class} is not a real unit class")
            if count < 0:
                raise ValueError(f"negative unit count for {fu_class}")
        if not self.gp_width and not any(self.per_class.values()):
            raise ValueError("a cluster must contain at least one unit")

    @property
    def general_purpose(self) -> bool:
        """True for a GP mix."""
        return self.gp_width > 0

    @property
    def width(self) -> int:
        """Total number of units (the cluster's issue width)."""
        if self.general_purpose:
            return self.gp_width
        return sum(self.per_class.values())

    def capacity(self, fu_class: FuClass) -> int:
        """Units per cycle able to execute operations of ``fu_class``."""
        if fu_class is FuClass.NONE:
            return 0
        if self.general_purpose:
            return self.gp_width
        return self.per_class.get(fu_class, 0)

    def merged_with(self, other: "UnitMix") -> "UnitMix":
        """Combine two mixes (used to build the unified equivalent)."""
        if self.general_purpose != other.general_purpose:
            raise ValueError("cannot merge GP and FS unit mixes")
        if self.general_purpose:
            return UnitMix(gp_width=self.gp_width + other.gp_width)
        merged = dict(self.per_class)
        for fu_class, count in other.per_class.items():
            merged[fu_class] = merged.get(fu_class, 0) + count
        return UnitMix(per_class=merged)


def gp_units(width: int) -> UnitMix:
    """A general purpose mix of ``width`` interchangeable units."""
    return UnitMix(gp_width=width)


def fs_units(memory: int, integer: int, floating: int) -> UnitMix:
    """A fully specified mix with the given per-class unit counts."""
    return UnitMix(
        per_class={
            FuClass.MEMORY: memory,
            FuClass.INTEGER: integer,
            FuClass.FLOAT: floating,
        }
    )


#: The paper's bused FS cluster: 1 memory, 2 integer, 1 floating point.
PAPER_FS_MIX = fs_units(memory=1, integer=2, floating=1)

#: The paper's grid FS cluster: 1 memory, 1 integer, 1 floating point.
PAPER_GRID_MIX = fs_units(memory=1, integer=1, floating=1)

#: The paper's GP cluster: 4 general purpose units.
PAPER_GP_MIX = gp_units(4)
