"""Whole-machine descriptions.

A :class:`Machine` is a list of clusters plus an interconnect.  It is the
single authority on *resource keys*: hashable identifiers for every counted
per-cycle resource, used both by the assignment phase's counting pools
(:mod:`repro.mrt.pool`) and by the scheduler's time-indexed reservation
table (:mod:`repro.mrt.table`).

Resource keys
-------------
* ``("issue", c, "gp")``        — one of cluster ``c``'s GP issue slots
* ``("issue", c, FuClass.X)``   — one of cluster ``c``'s class-X units
* ``("rd", c)`` / ``("wr", c)`` — a communication read/write port
* ``"bus"`` or ``("link", a, b)`` — a shared channel, per the interconnect
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from ..ddg.opcodes import FuClass, Opcode, fu_class_of
from .cluster import ClusterSpec
from .interconnect import Interconnect, NoInterconnect
from .units import UnitMix

ResourceKey = Hashable


@dataclass(frozen=True)
class Machine:
    """A clustered (or unified) VLIW machine."""

    clusters: Tuple[ClusterSpec, ...]
    interconnect: Interconnect
    name: str = ""

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("a machine needs at least one cluster")
        for expected, cluster in enumerate(self.clusters):
            if cluster.index != expected:
                raise ValueError(
                    f"cluster indices must be 0..n-1 in order, got "
                    f"{cluster.index} at position {expected}"
                )
        gp_flags = {c.units.general_purpose for c in self.clusters}
        if len(gp_flags) != 1:
            raise ValueError("mixing GP and FS clusters is not supported")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    @property
    def cluster_indices(self) -> List[int]:
        """All cluster indices, ``0 .. n_clusters - 1``."""
        return list(range(len(self.clusters)))

    @property
    def is_unified(self) -> bool:
        """True for a single-cluster (non-clustered) machine."""
        return len(self.clusters) == 1

    @property
    def general_purpose(self) -> bool:
        """True when units are general purpose (GP discipline)."""
        return self.clusters[0].units.general_purpose

    @property
    def total_width(self) -> int:
        """Total issue width across clusters."""
        return sum(c.width for c in self.clusters)

    def issue_capacity(self, fu_class: FuClass) -> int:
        """Machine-wide units per cycle for ``fu_class`` operations."""
        return sum(c.issue_capacity(fu_class) for c in self.clusters)

    def cluster(self, index: int) -> ClusterSpec:
        """The cluster spec at ``index``."""
        return self.clusters[index]

    # ------------------------------------------------------------------
    # Resource keys
    # ------------------------------------------------------------------
    def issue_key(self, cluster_index: int, fu_class: FuClass) -> ResourceKey:
        """Key of the issue-slot pool an op of ``fu_class`` consumes."""
        if self.general_purpose:
            return ("issue", cluster_index, "gp")
        return ("issue", cluster_index, fu_class)

    def read_port_key(self, cluster_index: int) -> ResourceKey:
        """Key of ``cluster_index``'s communication read-port pool."""
        return ("rd", cluster_index)

    def write_port_key(self, cluster_index: int) -> ResourceKey:
        """Key of ``cluster_index``'s communication write-port pool."""
        return ("wr", cluster_index)

    def resource_capacities(self) -> Dict[ResourceKey, int]:
        """Per-cycle capacity of every counted resource pool."""
        capacities: Dict[ResourceKey, int] = {}
        for cluster in self.clusters:
            if self.general_purpose:
                capacities[("issue", cluster.index, "gp")] = cluster.width
            else:
                for fu_class, count in cluster.units.per_class.items():
                    capacities[("issue", cluster.index, fu_class)] = count
            if not self.is_unified:
                capacities[("rd", cluster.index)] = cluster.read_ports
                capacities[("wr", cluster.index)] = cluster.write_ports
        capacities.update(self.interconnect.channel_resources())
        return capacities

    # ------------------------------------------------------------------
    # Resource demands
    # ------------------------------------------------------------------
    def op_resources(
        self, opcode: Opcode, cluster_index: int
    ) -> List[ResourceKey]:
        """Pools one non-copy operation consumes on ``cluster_index``."""
        if opcode is Opcode.COPY:
            raise ValueError("copies use copy_hop_resources, not op_resources")
        fu_class = fu_class_of(opcode)
        if self.cluster(cluster_index).issue_capacity(fu_class) <= 0:
            raise ValueError(
                f"cluster {cluster_index} has no {fu_class} unit"
            )
        return [self.issue_key(cluster_index, fu_class)]

    def copy_hop_resources(
        self, src_cluster: int, dst_clusters: Sequence[int]
    ) -> List[ResourceKey]:
        """Pools one copy from ``src_cluster`` to ``dst_clusters`` consumes.

        For a broadcast fabric ``dst_clusters`` may hold several targets
        (one bus slot, one source read port, a write port per target).  For
        a point-to-point fabric it must hold exactly one neighboring
        cluster.
        """
        if not dst_clusters:
            raise ValueError("a copy needs at least one target cluster")
        if not self.interconnect.broadcast and len(dst_clusters) != 1:
            raise ValueError(
                "non-broadcast fabrics deliver to one cluster per copy"
            )
        resources: List[ResourceKey] = [self.read_port_key(src_cluster)]
        for dst in dst_clusters:
            if dst == src_cluster:
                raise ValueError("copy source and target clusters coincide")
            if not self.interconnect.reachable(src_cluster, dst):
                raise ValueError(
                    f"cluster {dst} is not one hop from {src_cluster}"
                )
            resources.append(self.write_port_key(dst))
        resources.append(
            self.interconnect.channel_for_hop(src_cluster, dst_clusters[0])
        )
        return resources

    def copy_route(self, src_cluster: int, dst_cluster: int) -> List[int]:
        """Cluster path a value travels from src to dst (inclusive)."""
        return self.interconnect.route(src_cluster, dst_cluster)

    # ------------------------------------------------------------------
    # Derived machines
    # ------------------------------------------------------------------
    def unified_equivalent(self) -> "Machine":
        """The equally wide single-cluster machine the paper compares to."""
        if self.is_unified:
            return self
        merged: UnitMix = self.clusters[0].units
        for cluster in self.clusters[1:]:
            merged = merged.merged_with(cluster.units)
        unified_cluster = ClusterSpec(
            index=0, units=merged, read_ports=0, write_ports=0
        )
        return Machine(
            clusters=(unified_cluster,),
            interconnect=NoInterconnect(),
            name=f"{self.name}-unified" if self.name else "unified",
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "GP" if self.general_purpose else "FS"
        return (
            f"Machine({self.name or 'anon'}: {self.n_clusters} x "
            f"{kind}{self.clusters[0].width}, {self.interconnect})"
        )
