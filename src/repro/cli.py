"""Command-line interface: ``python -m repro``.

Subcommands:

* ``compile`` — read a loop in the textual format of
  :mod:`repro.ddg.parse`, assign + schedule it for a chosen machine,
  print the assignment, kernel, copies, and register pressure
  (``--trace`` adds the span tree, ``--trace-out`` a JSONL event log).
* ``trace`` — compile one loop with tracing on and print only the
  observability report (see ``docs/OBSERVABILITY.md``).
* ``profile`` — compile one loop with the deterministic profiler on
  and print the CPU-by-phase breakdown plus the top-functions table
  (see ``docs/PROFILING.md``).
* ``bench`` — the benchmark observatory (``run`` / ``check`` /
  ``report``): run the benchmark suite, append schema-versioned
  artifacts to ``results/bench_history.jsonl``, gate on budget or
  baseline regressions, and render the per-benchmark history.
* ``stats`` — print the Table 1 statistics of the evaluation suite.
* ``experiment`` — run one clustered configuration against its unified
  baseline over the suite and print the II-deviation histogram
  (``--json`` emits histogram + obs counters as one JSON document).
* ``lint`` — run the static-analysis rules (see ``docs/LINTING.md``)
  over loop files, the bundled corpus, or a machine description, and
  render the diagnostics as text, JSON, or SARIF 2.1.0; exits nonzero
  only when error-severity diagnostics remain after config overrides
  (``--exit-zero`` forces a zero exit for report-only runs).
* ``certify`` — compile loops and emit + independently verify their
  compilation certificates (see ``docs/CERTIFICATES.md``); ``--exact``
  additionally runs the bounded II-tightness oracle.  Renders through
  the same text/JSON/SARIF renderers as ``lint``.

``compile`` and ``experiment`` also accept ``--lint[=strict]`` and
``--certify[=strict]`` to run the analyzer / certificate verifier as
gates on every compiled artifact.  ``lint`` and ``certify`` accept
``--workers N`` to fan loops out over worker processes; the merged
report is byte-identical to a serial run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Callable, Dict, Optional

from . import obs
from .analysis import (
    EngineOptions,
    ExperimentError,
    deviation_table,
    experiment_summary,
    run_engine_experiment,
    run_experiment,
)
from .analysis.registers import format_pressure, register_pressure
from .codegen import expand_pipeline, format_kernel_only, format_pipelined
from .core import ALL_VARIANTS, CompilationError, compile_loop
from .ddg.dot import annotated_to_dot
from .ddg.parse import parse_loop
from .machine import Machine, STANDARD_PRESETS
from .workloads import (
    all_kernels,
    bundled_corpus,
    loads_corpus,
    paper_suite,
    suite_statistics,
)

#: Preset name → machine builder; one table shared with the service's
#: warm workers (:data:`repro.machine.STANDARD_PRESETS`), so a preset
#: named on the command line resolves against pre-built state there.
MACHINES: Dict[str, Callable[[], Machine]] = STANDARD_PRESETS

VARIANTS = {config.name.lower().replace(" ", "-"): config
            for config in ALL_VARIANTS}


def _machine(name: str) -> Machine:
    try:
        return MACHINES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        )


def _read_loop(args: argparse.Namespace):
    """Parse the loop file argument (``-`` reads stdin)."""
    if args.loop == "-":
        text = sys.stdin.read()
    else:
        with open(args.loop) as handle:
            text = handle.read()
    return parse_loop(text, name=args.loop)


def _trace_requested(args: argparse.Namespace) -> Optional[obs.Trace]:
    """A fresh trace when any tracing flag asks for one, else None."""
    if (getattr(args, "trace", False)
            or getattr(args, "trace_out", None)
            or getattr(args, "trace_chrome", None)):
        return obs.Trace()
    return None


def _emit_trace(trace: Optional[obs.Trace],
                args: argparse.Namespace) -> None:
    """Print the trace report and/or write the event logs, as flagged."""
    if trace is None:
        return
    if getattr(args, "trace", False):
        print()
        print(obs.format_trace_report(trace))
        lane_table = obs.timeline.format_lane_table(trace)
        if lane_table != "(no worker lanes)":
            print()
            print("worker lanes:")
            print(lane_table)
    out = getattr(args, "trace_out", None)
    if out:
        n_events = obs.write_jsonl(trace, out)
        print(f"wrote {out} ({n_events} events)")
    chrome_out = getattr(args, "trace_chrome", None)
    if chrome_out:
        n_events = obs.write_chrome_trace(trace, chrome_out)
        print(f"wrote {chrome_out} ({n_events} chrome trace events)")


def _cmd_compile(args: argparse.Namespace) -> int:
    loop = _read_loop(args)
    machine = _machine(args.machine)
    config = VARIANTS[args.variant]
    lint_config = (
        _lint_config_from_args(args) if args.lint is not None else None
    )
    certify_config = (
        _certify_config_from_args(args)
        if args.certify is not None else None
    )
    trace = _trace_requested(args)
    if trace is not None:
        obs.install(trace)
    try:
        result = compile_loop(
            loop, machine, config=config, verify=True,
            lint_config=lint_config,
            certify_config=certify_config,
        )
        unified = compile_loop(loop, machine.unified_equivalent())
    except CompilationError as exc:
        print(f"compilation failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if trace is not None:
            obs.uninstall()

    stats = result.assignment_stats
    print(f"machine: {machine}")
    print(f"II = {result.ii} (unified machine: {unified.ii}, "
          f"MII: {result.mii})")
    print(f"copies inserted: {result.copy_count}")
    print(f"assignment stats: placements={stats.placements} "
          f"forced={stats.forced_placements} "
          f"evictions={stats.evictions} copies={stats.copies} "
          f"(II attempts: {result.attempts})")
    sched = result.scheduler_stats
    print(f"scheduler stats: placements={sched.placements} "
          f"displacements={sched.evictions}")
    print()
    print("assignment:")
    for node in result.annotated.ddg.nodes:
        cluster = result.annotated.cluster_of[node.node_id]
        marker = "  [copy]" if node.is_copy else ""
        print(f"  {str(node):<20} -> C{cluster}{marker}")
    print()
    print(f"kernel ({result.schedule.stage_count} stages):")
    print(result.schedule.format_kernel())
    print()
    print(format_pressure(register_pressure(result.schedule)))
    if args.emit:
        print()
        code = expand_pipeline(result.schedule)
        print(format_pipelined(code, result.schedule))
        print()
        print(format_kernel_only(result.schedule))
    if args.simulate:
        from .sim import simulate_schedule

        report = simulate_schedule(loop, result.schedule, args.simulate)
        verdict = "ALL MATCH" if report.ok else "MISMATCH"
        print()
        print(
            f"simulated {args.simulate} iterations "
            f"({report.cycles} cycles, {report.checked_values} values): "
            f"{verdict}"
        )
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(annotated_to_dot(result.annotated))
        print(f"wrote {args.dot}")
    if result.lint_report is not None:
        report = result.lint_report
        print()
        print(f"lint: {report.summary()}")
        for diagnostic in report.diagnostics:
            print(f"  {diagnostic}")
        if not report.ok:
            _emit_trace(trace, args)
            return 1
    if result.certified is not None:
        from .certify.gate import artifact_diagnostics

        certified = result.certified
        print()
        verdict = "verified" if certified.ok else (
            f"{len(certified.issues)} issue(s)"
        )
        print(f"certificate: {verdict}"
              + (f", exact oracle: {certified.exact_status}"
                 if certified.exact_status else ""))
        for diagnostic in artifact_diagnostics(certified):
            print(f"  {diagnostic}")
        if not certified.ok:
            _emit_trace(trace, args)
            return 1
    _emit_trace(trace, args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    loop = _read_loop(args)
    machine = _machine(args.machine)
    config = VARIANTS[args.variant]
    with obs.tracing() as trace:
        result = compile_loop(loop, machine, config=config)
    print(f"machine: {machine}")
    print(f"II = {result.ii} (MII: {result.mii}, "
          f"attempts: {result.attempts})")
    print()
    print(obs.format_trace_report(trace))
    if args.out:
        n_events = obs.write_jsonl(trace, args.out)
        print()
        print(f"wrote {args.out} ({n_events} events)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: one traced + profiled compile, CPU report."""
    from .obs import prof

    loop = _read_loop(args)
    machine = _machine(args.machine)
    config = VARIANTS[args.variant]
    with obs.tracing() as trace, prof.profiling(trace):
        result = compile_loop(loop, machine, config=config)
    print(f"machine: {machine}")
    print(f"II = {result.ii} (MII: {result.mii}, "
          f"attempts: {result.attempts})")
    print()
    print(prof.format_profile_report(
        trace, n=args.top, sort=args.sort
    ))
    if args.tree:
        print()
        print("trace:")
        print(obs.format_trace_tree(trace))
    if args.out:
        n_events = obs.write_jsonl(trace, args.out)
        print()
        print(f"wrote {args.out} ({n_events} events)")
    if args.cprofile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        compile_loop(loop, machine, config=config)
        profiler.disable()
        profiler.dump_stats(args.cprofile)
        print(f"wrote {args.cprofile} (cProfile stats; inspect with "
              f"python -m pstats)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench run|check|report``: the benchmark observatory."""
    from .obs import bench

    history_path = args.history
    if args.action == "run":
        names = args.benchmarks or None
        suite_size = args.suite_size or (100 if args.smoke else None)
        code = bench.run_benchmarks(
            names, suite_size=suite_size, repo_root=args.repo_root
        )
        if code != 0:
            print(
                f"benchmark run failed (pytest exit {code}); "
                f"history not updated", file=sys.stderr,
            )
            return code
        artifacts = bench.collect_artifacts(
            names, repo_root=args.repo_root
        )
        for artifact in artifacts:
            bench.append_history(artifact, history_path)
        print(
            f"recorded {len(artifacts)} benchmark run(s) in "
            f"{history_path}"
        )
        return 0

    entries = bench.read_history(history_path)
    if args.action == "report":
        print(f"benchmark history — {history_path} "
              f"({len(entries)} entries)")
        print()
        print(bench.format_history_table(entries))
        return 0

    # action == "check"
    if not entries:
        print(f"no history at {history_path}; run `repro bench run` "
              f"first", file=sys.stderr)
        return 0 if args.exit_zero else 1
    violations = bench.check_entries(
        entries, tolerance=args.tolerance, baseline_n=args.baseline
    )
    checked = sorted(bench.by_benchmark(entries))
    if violations:
        print(f"{len(violations)} perf violation(s) across "
              f"{len(checked)} benchmark(s):")
        for violation in violations:
            print(f"  {violation}")
        return 0 if args.exit_zero else 1
    print(
        f"{len(checked)} benchmark(s) within budgets and baseline "
        f"(tolerance {args.tolerance:.0%}, baseline last "
        f"{args.baseline})"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    loops = paper_suite(args.loops)
    print(suite_statistics(loops).format_table())
    return 0


def _engine_options(args: argparse.Namespace) -> Optional[EngineOptions]:
    """Engine options when any engine flag was used, else None.

    Without engine flags the serial reference runner handles the
    experiment (lenient or strict per ``--strict``).
    """
    if not (args.workers or args.cache_dir or args.resume
            or args.timeout):
        return None
    return EngineOptions(
        workers=args.workers,
        strict=args.strict,
        timeout_seconds=args.timeout,
        cache_dir=args.cache_dir,
        resume=args.resume,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    loops = paper_suite(args.loops)
    machine = _machine(args.machine)
    config = VARIANTS[args.variant]
    lint_config = (
        _lint_config_from_args(args) if args.lint is not None else None
    )
    certify_config = (
        _certify_config_from_args(args)
        if args.certify is not None else None
    )
    options = _engine_options(args)
    if options is not None and lint_config is not None:
        options = dataclasses.replace(options, lint_config=lint_config)
    if options is not None and certify_config is not None:
        options = dataclasses.replace(
            options, certify_config=certify_config
        )
    trace = _trace_requested(args)
    if args.json and trace is None:
        # --json reports obs counters, so it always traces.
        trace = obs.Trace()
    if trace is not None:
        obs.install(trace)
    try:
        if options is not None:
            result = run_engine_experiment(
                loops, machine, config=config, options=options
            )
        else:
            result = run_experiment(
                loops, machine, config=config, strict=args.strict,
                lint_config=lint_config,
                certify_config=certify_config,
            )
    except ExperimentError as exc:
        print(f"experiment aborted: {exc}", file=sys.stderr)
        print(
            f"partial result: "
            f"{exc.partial_result.n_loops} loops measured",
            file=sys.stderr,
        )
        return 1
    finally:
        if trace is not None:
            obs.uninstall()
    lint_failed = (
        lint_config is not None and result.total_lint_errors > 0
    )
    cert_failed = (
        certify_config is not None and result.total_cert_errors > 0
    )
    failed = lint_failed or cert_failed
    if args.json:
        doc = _experiment_json(result, trace)
        if lint_config is not None:
            doc["lint"] = {
                "errors": result.total_lint_errors,
                "warnings": result.total_lint_warnings,
                "codes": result.lint_code_counts(),
            }
        if certify_config is not None:
            doc["certify"] = {
                "errors": result.total_cert_errors,
                "codes": result.cert_code_counts(),
                "exact": result.exact_status_counts(),
            }
        print(json.dumps(doc, indent=2))
        out = getattr(args, "trace_out", None)
        if out:
            obs.write_jsonl(trace, out)
        chrome_out = getattr(args, "trace_chrome", None)
        if chrome_out:
            obs.write_chrome_trace(trace, chrome_out)
        return 1 if failed else 0
    print(deviation_table([result]))
    print()
    print(experiment_summary(result))
    if lint_config is not None:
        print(
            f"lint gate: {result.total_lint_errors} error(s), "
            f"{result.total_lint_warnings} warning(s) across "
            f"{result.n_loops} loops"
            + (f" — codes {result.lint_code_counts()}"
               if result.lint_code_counts() else "")
        )
    if certify_config is not None:
        print(
            f"certify gate: {result.total_cert_errors} certificate "
            f"failure(s) across {result.n_loops} loops"
            + (f" — codes {result.cert_code_counts()}"
               if result.cert_code_counts() else "")
            + (f" — exact {result.exact_status_counts()}"
               if result.exact_status_counts() else "")
        )
    _emit_trace(trace, args)
    return 1 if failed else 0


def _experiment_json(result, trace: Optional[obs.Trace]) -> Dict:
    """The ``experiment --json`` document: histogram + obs metrics."""
    histogram = result.histogram
    doc: Dict = {
        "label": result.label,
        "machine": result.machine_name,
        "config": result.config_name,
        "n_loops": result.n_loops,
        "n_failed": result.n_failed,
        "cache_hits": result.cache_hits,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "baseline_seconds": round(result.baseline_seconds, 6),
        "histogram": {
            str(deviation): count
            for deviation, count in sorted(histogram.counts.items())
        },
        "match_percentage": round(histogram.match_percentage, 3),
        "mean_deviation": round(histogram.mean_deviation, 4),
        "total_copies": result.total_copies,
    }
    if result.n_failed:
        doc["failures"] = [
            {"loop": outcome.loop_name, "status": outcome.status,
             "error": outcome.error}
            for outcome in result.failures
        ]
    if trace is not None:
        doc.update(obs.metrics_dict(trace))
    return doc


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis import campaign_to_markdown, run_campaign

    campaign = run_campaign(
        n_loops=args.loops,
        include_table3=not args.skip_table3,
        progress=(print if args.verbose else None),
        engine_options=_engine_options(args),
    )
    report = campaign_to_markdown(campaign)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _severity_overrides(args: argparse.Namespace) -> Dict[str, str]:
    """Parse repeated ``--severity CODE=LEVEL`` flags into a map."""
    severity: Dict[str, str] = {}
    for item in getattr(args, "severity", None) or []:
        code, _, level = item.partition("=")
        if not level:
            raise SystemExit(
                f"--severity wants CODE=LEVEL, got {item!r}"
            )
        severity[code] = level
    return severity


def _certify_config_from_args(args: argparse.Namespace):
    """Build a :class:`repro.certify.CertifyConfig` from parsed flags."""
    from .certify.gate import CertifyConfig

    exact = getattr(args, "exact", False)
    if getattr(args, "fast", False):
        exact = False
    return CertifyConfig(
        strict=getattr(args, "certify", None) == "strict",
        exact=exact,
        exact_node_budget=getattr(args, "exact_budget", 12),
        exact_backtrack_budget=getattr(args, "exact_backtracks", 20000),
    )


def _lint_config_from_args(args: argparse.Namespace):
    """Build a :class:`repro.lint.LintConfig` from parsed lint flags."""
    from .lint import LintConfig

    severity = _severity_overrides(args)
    enable = set(getattr(args, "enable", None) or [])
    if getattr(args, "differential", False):
        enable.add("SCHED490")
    try:
        return LintConfig(
            disable=frozenset(getattr(args, "disable", None) or []),
            enable=frozenset(enable),
            select=frozenset(getattr(args, "rule", None) or []),
            severity=severity,
            strict=getattr(args, "lint", None) == "strict",
            differential_sample=getattr(args, "sample", 1),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _changed_paths(base: str) -> list:
    """Files the working tree changed relative to ``base`` (plus
    untracked ones), for ``repro lint --changed`` scoping."""
    import os
    import subprocess

    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base],
            capture_output=True, text=True, check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        raise SystemExit(f"lint --changed needs a git checkout: {exc}")
    paths = [
        line.strip()
        for line in (diff + untracked).splitlines()
        if line.strip()
    ]
    # Deduplicate, keep git's order, drop deletions.
    return [p for p in dict.fromkeys(paths) if os.path.exists(p)]


def _lint_loops(
    args: argparse.Namespace, extra_paths=(), allow_default=True
):
    """Collect the loops a ``repro lint`` invocation targets.

    Positional paths may be single-loop files or multi-loop corpus
    files (detected by the ``== name ==`` headers); with no explicit
    source the bundled corpus is analyzed — unless ``allow_default`` is
    off (source-only and ``--changed`` runs must not balloon into a
    full corpus lint).
    """
    loops = []
    for path in list(args.paths) + list(extra_paths):
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path) as handle:
                text = handle.read()
        if any(
            line.lstrip().startswith("==") for line in text.splitlines()
        ):
            loops.extend(loads_corpus(text))
        else:
            loops.append(parse_loop(text, name=path))
    if args.kernels:
        loops.extend(all_kernels())
    if args.suite:
        loops.extend(paper_suite(args.suite))
    if args.bundled or (not loops and allow_default):
        loops.extend(bundled_corpus())
    unique = {}
    for loop in loops:
        unique.setdefault(loop.name, loop)
    return list(unique.values())


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (
        LintReport,
        LintTarget,
        collect_source_files,
        lint_corpus_deep,
        lint_machine,
        lint_source_file,
        render,
        run_lint,
    )

    machine = _machine(args.machine)
    config = _lint_config_from_args(args)
    source_paths = list(args.src or [])
    changed_loop_paths = []
    if args.changed is not None:
        changed = _changed_paths(args.changed)
        source_paths += [p for p in changed if p.endswith(".py")]
        changed_loop_paths = [
            p for p in changed
            if p.endswith(".loop")
            or "/workloads/data/" in p.replace("\\", "/")
        ]
    # Source-only and --changed runs must stay scoped: no silent
    # fallback to the full bundled corpus.
    allow_default = args.changed is None and not source_paths
    loops = _lint_loops(
        args, extra_paths=changed_loop_paths, allow_default=allow_default
    )
    sources = collect_source_files(source_paths)
    if args.changed is not None and not loops and not sources:
        print("lint --changed: nothing lintable in the diff")
        return 0
    variant = VARIANTS[args.variant]
    report = LintReport()
    if loops:
        if args.fast:
            # Shallow pass: graph + machine rules, no compilation.
            report.extend(lint_machine(machine, config))
            report.extend(run_lint(
                (LintTarget(name=ddg.name, ddg=ddg) for ddg in loops),
                config,
            ))
        elif args.workers >= 2 and len(loops) > 1:
            # Parallel deep pass over the warm worker pool: the machine
            # in the parent, one task per loop; per-loop reports merge
            # back in suite order, so the rendered output is
            # byte-identical to a serial run.
            from .service import map_tasks

            report.extend(lint_machine(machine, config))
            payloads = [
                (ddg, machine, config, variant) for ddg in loops
            ]
            for loop_report in map_tasks(
                "lint_loop", payloads, workers=args.workers
            ):
                report.extend(loop_report)
        else:
            report.extend(
                lint_corpus_deep(loops, machine, config, variant)
            )
    if sources:
        if args.workers >= 2 and len(sources) > 1:
            from .service import map_tasks

            payloads = [
                (source.path, source.text, config) for source in sources
            ]
            for file_report in map_tasks(
                "lint_source", payloads, workers=args.workers
            ):
                report.extend(file_report)
        else:
            for source in sources:
                report.extend(lint_source_file(source, config))
        # Interprocedural pass: one project target over all the source
        # files, only when some CONC9xx rule is actually enabled (a
        # ``--rule SRC8`` run must not pay for the call graph).
        from .lint import lint_project
        from .lint.registry import applicable_rules

        if applicable_rules(config, frozenset(("project",))):
            report.extend(
                lint_project(
                    sources, config, cache_dir=args.analysis_cache
                )
            )
    if args.write_baseline:
        from .lint import write_baseline

        count = write_baseline(args.write_baseline, report.diagnostics)
        print(
            f"wrote {args.write_baseline} ({count} baselined "
            f"error fingerprint(s))"
        )
        return 0
    if args.baseline:
        from .lint import apply_baseline, load_baseline

        demoted = apply_baseline(report, load_baseline(args.baseline))
        if demoted:
            # stderr so machine-readable stdout (json/sarif) stays pure.
            print(
                f"baseline {args.baseline}: demoted {len(demoted)} "
                f"known finding(s) to warning",
                file=sys.stderr,
            )
    rendered = render(report, args.format)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output} ({report.summary()})")
    else:
        print(rendered)
    return 0 if args.exit_zero else report.exit_code


def _cmd_certify(args: argparse.Namespace) -> int:
    from .certify.gate import certify_loop_report
    from .lint import render
    from .lint.engine import LintReport

    machine = _machine(args.machine)
    variant = VARIANTS[args.variant]
    loops = _lint_loops(args)
    severity = _severity_overrides(args)
    certify_config = _certify_config_from_args(args)
    report = LintReport()
    if args.workers >= 2 and len(loops) > 1:
        # One warm-pool task per loop; merge in suite order so the
        # rendered report is byte-identical to a serial run.
        from .service import map_tasks

        payloads = [
            (ddg, machine, variant, certify_config, severity)
            for ddg in loops
        ]
        for loop_report in map_tasks(
            "certify_loop", payloads, workers=args.workers
        ):
            report.extend(loop_report)
    else:
        for ddg in loops:
            report.extend(
                certify_loop_report(
                    ddg, machine, variant, certify_config, severity
                )
            )
    rendered = render(report, args.format)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output} ({report.summary()})")
    else:
        print(rendered)
    return 0 if args.exit_zero else report.exit_code


def _add_lint_select_flags(parser: argparse.ArgumentParser) -> None:
    """Rule-selection flags shared by ``lint`` and the ``--lint`` gates."""
    parser.add_argument(
        "--disable", action="append", default=None, metavar="CODE",
        help="disable a rule (repeatable), e.g. --disable DDG105",
    )
    parser.add_argument(
        "--enable", action="append", default=None, metavar="CODE",
        help="enable a default-off rule (repeatable), "
             "e.g. --enable SCHED490",
    )
    parser.add_argument(
        "--severity", action="append", default=None,
        metavar="CODE=LEVEL",
        help="override a rule's severity (error/warning/info), "
             "repeatable",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="CODE",
        help="run only rules matching a code or family prefix "
             "(repeatable), e.g. --rule DF705 or --rule DF7; selected "
             "default-off rules run too",
    )
    parser.add_argument(
        "--differential", action="store_true",
        help="shorthand for --enable SCHED490 (cross-check against "
             "the frozen slow-reference pipeline)",
    )
    parser.add_argument(
        "--sample", type=int, default=1, metavar="N",
        help="run the differential rule on one loop in N (default "
             "every sampled loop)",
    )


def _add_lint_gate_flag(parser: argparse.ArgumentParser) -> None:
    """The ``--lint[=strict]`` gate flag on compile/experiment."""
    parser.add_argument(
        "--lint", nargs="?", const="on", choices=["on", "strict"],
        default=None, metavar="strict",
        help="lint every compiled artifact; '--lint strict' treats "
             "lint errors as compilation failures",
    )


def _add_certify_gate_flag(parser: argparse.ArgumentParser) -> None:
    """The ``--certify[=strict]`` gate flag on compile/experiment."""
    parser.add_argument(
        "--certify", nargs="?", const="on", choices=["on", "strict"],
        default=None, metavar="strict",
        help="emit + independently verify a certificate for every "
             "compiled artifact; '--certify strict' treats "
             "certificate failures as compilation failures",
    )
    _add_exact_flags(parser)


def _add_exact_flags(parser: argparse.ArgumentParser) -> None:
    """The exact-oracle flag set shared by ``certify`` and the gates."""
    parser.add_argument(
        "--exact", action="store_true",
        help="also run the bounded exact II-tightness oracle on every "
             "verified certificate (loose IIs report as CERT690)",
    )
    parser.add_argument(
        "--exact-budget", type=int, default=12, metavar="NODES",
        help="largest annotated-graph size the exact oracle searches "
             "(default 12)",
    )
    parser.add_argument(
        "--exact-backtracks", type=int, default=20000, metavar="N",
        help="row bindings the exact search may try before giving up "
             "as budget_exhausted (default 20000)",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The experiment-engine flag set (see docs/EXPERIMENT_ENGINE.md)."""
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fan loops out over N worker processes "
             "(0 = serial reference path)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="abort on the first failing loop instead of recording "
             "it as a failed outcome",
    )
    parser.add_argument(
        "--timeout", type=float, default=0.0, metavar="SECONDS",
        help="per-loop wall-time budget; over-budget loops are "
             "skipped as 'timeout' outcomes (0 = no budget)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist per-loop outcomes keyed by content hash",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay cached outcomes from --cache-dir instead of "
             "recompiling them",
    )


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` / ``--trace-out`` / ``--trace-chrome``
    flag set."""
    parser.add_argument(
        "--trace", action="store_true",
        help="print the span tree, phase profile, and counters",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the trace as a JSONL event log",
    )
    parser.add_argument(
        "--trace-chrome", default=None, metavar="FILE",
        help="write the trace as Chrome trace-event JSON "
             "(loadable in Perfetto / chrome://tracing)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cluster assignment for modulo scheduling "
                    "(Nystrom & Eichenberger, MICRO-31 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser(
        "compile", help="assign + schedule one loop file ('-' for stdin)"
    )
    compile_parser.add_argument("loop", help="loop file in the text format")
    compile_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    compile_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    compile_parser.add_argument(
        "--dot", default=None, metavar="FILE",
        help="also write the annotated graph as Graphviz DOT",
    )
    compile_parser.add_argument(
        "--emit", action="store_true",
        help="print the expanded pipelined code (flat + predicated)",
    )
    compile_parser.add_argument(
        "--simulate", type=int, default=0, metavar="N",
        help="execute N iterations on the simulated machine and "
             "validate against the sequential reference",
    )
    _add_trace_flags(compile_parser)
    _add_lint_gate_flag(compile_parser)
    _add_certify_gate_flag(compile_parser)
    _add_lint_select_flags(compile_parser)
    compile_parser.set_defaults(func=_cmd_compile)

    trace_parser = sub.add_parser(
        "trace",
        help="compile one loop with tracing on and print the span "
             "tree, phase profile, and counters",
    )
    trace_parser.add_argument("loop", help="loop file ('-' for stdin)")
    trace_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    trace_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    trace_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSONL event log",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    profile_parser = sub.add_parser(
        "profile",
        help="compile one loop with the deterministic profiler on and "
             "print the CPU-by-phase and top-functions report "
             "(see docs/PROFILING.md)",
    )
    profile_parser.add_argument("loop", help="loop file ('-' for stdin)")
    profile_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    profile_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    profile_parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the top-functions table (default 20)",
    )
    profile_parser.add_argument(
        "--sort", default="cpu", choices=["cpu", "calls", "name"],
        help="top-functions sort order (default cpu)",
    )
    profile_parser.add_argument(
        "--tree", action="store_true",
        help="also print the span tree (with per-span CPU)",
    )
    profile_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the profiled trace as a JSONL event log",
    )
    profile_parser.add_argument(
        "--cprofile", default=None, metavar="FILE",
        help="also run an unprofiled compile under cProfile and dump "
             "binary pstats to FILE",
    )
    profile_parser.set_defaults(func=_cmd_profile)

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark observatory: run the suite, append to the "
             "perf history, gate on regressions",
    )
    bench_parser.add_argument(
        "action", choices=["run", "check", "report"],
        help="run: execute benchmarks + append artifacts to history; "
             "check: compare the newest entries against budgets and "
             "the last-N baseline; report: render the history table",
    )
    bench_parser.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names for 'run' (default: every registered "
             "observatory benchmark)",
    )
    bench_parser.add_argument(
        "--history", default="results/bench_history.jsonl",
        metavar="FILE", help="history store location",
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="run with the 100-loop smoke suite size (CI perf gate)",
    )
    bench_parser.add_argument(
        "--suite-size", type=int, default=0, metavar="N",
        help="explicit REPRO_SUITE_SIZE for the run (overrides "
             "--smoke)",
    )
    bench_parser.add_argument(
        "--repo-root", default=".", metavar="DIR",
        help="repository root the benchmarks run in (default .)",
    )
    bench_parser.add_argument(
        "--tolerance", type=float, default=0.15, metavar="FRACTION",
        help="allowed fractional slowdown vs the baseline mean before "
             "'check' fails (default 0.15)",
    )
    bench_parser.add_argument(
        "--baseline", type=int, default=5, metavar="N",
        help="how many prior entries form the regression baseline "
             "(default 5)",
    )
    bench_parser.add_argument(
        "--exit-zero", action="store_true",
        help="report violations but exit 0 (report-only CI runs)",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    stats_parser = sub.add_parser(
        "stats", help="print Table 1 statistics of the loop suite"
    )
    stats_parser.add_argument("--loops", type=int, default=1327)
    stats_parser.set_defaults(func=_cmd_stats)

    experiment_parser = sub.add_parser(
        "experiment", help="one machine vs its unified baseline"
    )
    experiment_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    experiment_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    experiment_parser.add_argument("--loops", type=int, default=250)
    experiment_parser.add_argument(
        "--json", action="store_true",
        help="emit the deviation histogram + obs counters as JSON",
    )
    _add_engine_flags(experiment_parser)
    _add_trace_flags(experiment_parser)
    _add_lint_gate_flag(experiment_parser)
    _add_certify_gate_flag(experiment_parser)
    _add_lint_select_flags(experiment_parser)
    experiment_parser.set_defaults(func=_cmd_experiment)

    lint_parser = sub.add_parser(
        "lint",
        help="static-analysis rules over loops / corpora / machines "
             "(see docs/LINTING.md)",
    )
    lint_parser.add_argument(
        "paths", nargs="*",
        help="loop or corpus files ('-' for stdin); default is the "
             "bundled corpus",
    )
    lint_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    lint_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    lint_parser.add_argument(
        "--kernels", action="store_true",
        help="also lint every hand-written paper kernel",
    )
    lint_parser.add_argument(
        "--bundled", action="store_true",
        help="also lint the bundled corpus (the default when no other "
             "source is given)",
    )
    lint_parser.add_argument(
        "--suite", type=int, default=0, metavar="N",
        help="also lint paper_suite(N)",
    )
    lint_parser.add_argument(
        "--src", action="append", default=None, metavar="PATH",
        help="also self-lint Python files/directories with the SRC8xx "
             "rules (repeatable), e.g. --src src/",
    )
    lint_parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None,
        metavar="REF",
        help="lint only what the working tree changed relative to REF "
             "(default HEAD): changed .py files via SRC8xx, changed "
             "loop/corpus files via the pipeline rules",
    )
    lint_parser.add_argument(
        "--fast", action="store_true",
        help="shallow pass only (graph + machine rules, no "
             "compilation)",
    )
    lint_parser.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format (default text)",
    )
    lint_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the rendered report to a file instead of stdout",
    )
    lint_parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="deep-lint loops over N worker processes (report is "
             "byte-identical to a serial run)",
    )
    lint_parser.add_argument(
        "--exit-zero", action="store_true",
        help="always exit 0, even with error-severity findings "
             "(report-only CI runs)",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="demote error findings fingerprinted in FILE to warnings "
             "(warn-first adoption of new rule families)",
    )
    lint_parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="record the run's error fingerprints into FILE and exit 0 "
             "instead of rendering a report",
    )
    lint_parser.add_argument(
        "--analysis-cache", default=None, metavar="DIR",
        help="incremental cache directory for the interprocedural "
             "CONC9xx pass (unchanged files and call-graph components "
             "are not re-analyzed)",
    )
    _add_lint_select_flags(lint_parser)
    lint_parser.set_defaults(func=_cmd_lint)

    certify_parser = sub.add_parser(
        "certify",
        help="emit + independently verify compilation certificates "
             "(see docs/CERTIFICATES.md)",
    )
    certify_parser.add_argument(
        "paths", nargs="*",
        help="loop or corpus files ('-' for stdin); default is the "
             "bundled corpus",
    )
    certify_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    certify_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    certify_parser.add_argument(
        "--kernels", action="store_true",
        help="also certify every hand-written paper kernel",
    )
    certify_parser.add_argument(
        "--bundled", action="store_true",
        help="also certify the bundled corpus (the default when no "
             "other source is given)",
    )
    certify_parser.add_argument(
        "--suite", type=int, default=0, metavar="N",
        help="also certify paper_suite(N)",
    )
    certify_parser.add_argument(
        "--fast", action="store_true",
        help="certificate verification only: never run the exact "
             "oracle (overrides --exact)",
    )
    certify_parser.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format (default text)",
    )
    certify_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the rendered report to a file instead of stdout",
    )
    certify_parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="certify loops over N worker processes (report is "
             "byte-identical to a serial run)",
    )
    certify_parser.add_argument(
        "--exit-zero", action="store_true",
        help="always exit 0, even with certificate failures "
             "(report-only CI runs)",
    )
    certify_parser.add_argument(
        "--severity", action="append", default=None,
        metavar="CODE=LEVEL",
        help="override a diagnostic's severity (error/warning/info), "
             "repeatable",
    )
    _add_exact_flags(certify_parser)
    certify_parser.set_defaults(func=_cmd_certify)

    campaign_parser = sub.add_parser(
        "campaign", help="regenerate every paper table and figure"
    )
    campaign_parser.add_argument("--loops", type=int, default=250)
    campaign_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the markdown report to a file instead of stdout",
    )
    campaign_parser.add_argument(
        "--skip-table3", action="store_true",
        help="skip the slow 6/8-cluster Table 3 sweep",
    )
    campaign_parser.add_argument("--verbose", action="store_true")
    _add_engine_flags(campaign_parser)
    campaign_parser.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
