"""Command-line interface: ``python -m repro``.

Three subcommands:

* ``compile`` — read a loop in the textual format of
  :mod:`repro.ddg.parse`, assign + schedule it for a chosen machine,
  print the assignment, kernel, copies, and register pressure.
* ``stats`` — print the Table 1 statistics of the evaluation suite.
* ``experiment`` — run one clustered configuration against its unified
  baseline over the suite and print the II-deviation histogram.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from .analysis import (
    deviation_table,
    experiment_summary,
    run_experiment,
)
from .analysis.registers import format_pressure, register_pressure
from .codegen import expand_pipeline, format_kernel_only, format_pipelined
from .core import ALL_VARIANTS, HEURISTIC_ITERATIVE, compile_loop
from .ddg.dot import annotated_to_dot
from .ddg.parse import parse_loop
from .machine import (
    Machine,
    four_cluster_fs,
    four_cluster_gp,
    four_cluster_grid,
    n_cluster_gp,
    two_cluster_fs,
    two_cluster_gp,
)
from .workloads import paper_suite, suite_statistics

MACHINES: Dict[str, Callable[[], Machine]] = {
    "2gp": two_cluster_gp,
    "4gp": four_cluster_gp,
    "2fs": two_cluster_fs,
    "4fs": four_cluster_fs,
    "grid": four_cluster_grid,
    "6gp": lambda: n_cluster_gp(6, 6, 3),
    "8gp": lambda: n_cluster_gp(8, 7, 3),
}

VARIANTS = {config.name.lower().replace(" ", "-"): config
            for config in ALL_VARIANTS}


def _machine(name: str) -> Machine:
    try:
        return MACHINES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        )


def _cmd_compile(args: argparse.Namespace) -> int:
    if args.loop == "-":
        text = sys.stdin.read()
    else:
        with open(args.loop) as handle:
            text = handle.read()
    loop = parse_loop(text, name=args.loop)
    machine = _machine(args.machine)
    config = VARIANTS[args.variant]
    result = compile_loop(loop, machine, config=config, verify=True)
    unified = compile_loop(loop, machine.unified_equivalent())

    print(f"machine: {machine}")
    print(f"II = {result.ii} (unified machine: {unified.ii}, "
          f"MII: {result.mii})")
    print(f"copies inserted: {result.copy_count}")
    print()
    print("assignment:")
    for node in result.annotated.ddg.nodes:
        cluster = result.annotated.cluster_of[node.node_id]
        marker = "  [copy]" if node.is_copy else ""
        print(f"  {str(node):<20} -> C{cluster}{marker}")
    print()
    print(f"kernel ({result.schedule.stage_count} stages):")
    print(result.schedule.format_kernel())
    print()
    print(format_pressure(register_pressure(result.schedule)))
    if args.emit:
        print()
        code = expand_pipeline(result.schedule)
        print(format_pipelined(code, result.schedule))
        print()
        print(format_kernel_only(result.schedule))
    if args.simulate:
        from .sim import simulate_schedule

        report = simulate_schedule(loop, result.schedule, args.simulate)
        verdict = "ALL MATCH" if report.ok else "MISMATCH"
        print()
        print(
            f"simulated {args.simulate} iterations "
            f"({report.cycles} cycles, {report.checked_values} values): "
            f"{verdict}"
        )
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(annotated_to_dot(result.annotated))
        print(f"wrote {args.dot}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    loops = paper_suite(args.loops)
    print(suite_statistics(loops).format_table())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    loops = paper_suite(args.loops)
    machine = _machine(args.machine)
    config = VARIANTS[args.variant]
    result = run_experiment(loops, machine, config=config)
    print(deviation_table([result]))
    print()
    print(experiment_summary(result))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis import campaign_to_markdown, run_campaign

    campaign = run_campaign(
        n_loops=args.loops,
        include_table3=not args.skip_table3,
        progress=(print if args.verbose else None),
    )
    report = campaign_to_markdown(campaign)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cluster assignment for modulo scheduling "
                    "(Nystrom & Eichenberger, MICRO-31 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser(
        "compile", help="assign + schedule one loop file ('-' for stdin)"
    )
    compile_parser.add_argument("loop", help="loop file in the text format")
    compile_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    compile_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    compile_parser.add_argument(
        "--dot", default=None, metavar="FILE",
        help="also write the annotated graph as Graphviz DOT",
    )
    compile_parser.add_argument(
        "--emit", action="store_true",
        help="print the expanded pipelined code (flat + predicated)",
    )
    compile_parser.add_argument(
        "--simulate", type=int, default=0, metavar="N",
        help="execute N iterations on the simulated machine and "
             "validate against the sequential reference",
    )
    compile_parser.set_defaults(func=_cmd_compile)

    stats_parser = sub.add_parser(
        "stats", help="print Table 1 statistics of the loop suite"
    )
    stats_parser.add_argument("--loops", type=int, default=1327)
    stats_parser.set_defaults(func=_cmd_stats)

    experiment_parser = sub.add_parser(
        "experiment", help="one machine vs its unified baseline"
    )
    experiment_parser.add_argument(
        "--machine", default="2gp", help=f"one of {sorted(MACHINES)}"
    )
    experiment_parser.add_argument(
        "--variant", default="heuristic-iterative",
        choices=sorted(VARIANTS),
    )
    experiment_parser.add_argument("--loops", type=int, default=250)
    experiment_parser.set_defaults(func=_cmd_experiment)

    campaign_parser = sub.add_parser(
        "campaign", help="regenerate every paper table and figure"
    )
    campaign_parser.add_argument("--loops", type=int, default=250)
    campaign_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the markdown report to a file instead of stdout",
    )
    campaign_parser.add_argument(
        "--skip-table3", action="store_true",
        help="skip the slow 6/8-cluster Table 3 sweep",
    )
    campaign_parser.add_argument("--verbose", action="store_true")
    campaign_parser.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
