"""Sharded content-addressed result cache for the compile service.

Entries are small JSON documents keyed by the hex compile-request
fingerprint (:func:`repro.workloads.fingerprint.compile_fingerprint`).
Keys spread over 256 shard directories (the first two hex characters),
so a million-entry cache never puts a million files in one directory
and shard subsets can be rsynced / expired independently.

Writes are atomic (temp file + rename), replays are validated against
the writer's ``version`` (the engine's ``CACHE_VERSION`` — one bump
invalidates both the engine's flat cache and this one), and a corrupt
or torn entry reads as a miss, never an error.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Optional


class ShardedResultCache:
    """Directory-sharded key→document store with hit/miss counters."""

    def __init__(self, root: str, version: int) -> None:
        self.root = root
        self.version = version
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        """The cached document under ``key``, or None (counts hit/miss)."""
        try:
            with open(self._path(key)) as handle:
                doc = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            with self._lock:
                self.misses += 1
            return None
        if doc.get("version") != self.version:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return doc.get("value")

    def put(self, key: str, value: Dict) -> None:
        """Persist one document atomically under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w") as handle:
            json.dump({"version": self.version, "value": value}, handle)
        os.replace(tmp, path)

    def __len__(self) -> int:
        count = 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            count += sum(
                1 for entry in os.listdir(shard_dir)
                if entry.endswith(".json")
            )
        return count

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
