"""The compile-as-a-service front door: async admission over the pool.

:class:`CompileService` turns the warm fork-server pool into a serving
layer: thousands of concurrent :meth:`~CompileService.submit` coroutines
are admitted through

* **per-tenant quotas** — a tenant with ``tenant_quota`` requests
  already in flight is rejected immediately with
  :class:`QuotaExceededError` (the HTTP-429 analogue), so one noisy
  tenant cannot starve the rest;
* **backpressure** — at most ``max_pending`` requests occupy the
  service at once; excess awaiters queue on the admission semaphore
  instead of ballooning the dispatch queue;
* **the sharded result cache** — a request whose compile fingerprint
  (:func:`repro.workloads.fingerprint.compile_fingerprint` +
  ``CACHE_VERSION``) is cached returns without touching the pool;
* **micro-batching** — admitted misses are drained into chunks of up
  to ``batch_size`` (waiting at most ``batch_window_s`` for stragglers)
  and dispatched as one ``compile_batch`` pool task each, so per-task
  IPC cost amortizes over the batch while idle workers still steal
  whatever chunk is next.

Replies are bit-identical to a direct serial
:func:`repro.core.driver.compile_loop` call — the worker runs exactly
that function — and a crashed worker or blown deadline degrades to a
``failed`` / ``timeout`` reply instead of an exception, mirroring the
experiment engine's fault taxonomy.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..ddg.graph import Ddg
from ..workloads.fingerprint import compile_fingerprint
from .cache import ShardedResultCache
from .pool import (
    DeadlineExceeded,
    WorkerCrashError,
    WorkerPool,
    shared_pool,
)
from .tasks import resolve_machine, resolve_variant


class QuotaExceededError(RuntimeError):
    """The tenant already has ``tenant_quota`` requests in flight."""


@dataclass(frozen=True)
class CompileRequest:
    """One compile job entering the front door.

    ``machine`` and ``variant`` may be preset/slug names (resolved
    against the warm worker tables — the cheap path) or concrete
    ``Machine`` / ``AssignmentConfig`` objects.
    """

    loop: Ddg
    machine: object = "2gp"
    variant: object = "heuristic-iterative"
    verify: bool = False
    tenant: str = "default"


@dataclass(frozen=True)
class CompileReply:
    """One finished request: outcome + serving facts."""

    loop: str
    status: str  # "ok" | "failed" | "timeout"
    ii: int
    mii: int
    copies: int
    error: str
    cached: bool
    latency_s: float
    pid: int


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of one :class:`CompileService`."""

    workers: int = 1
    #: Requests per dispatched pool chunk (micro-batch ceiling).
    batch_size: int = 16
    #: How long the dispatcher waits for a batch to fill (seconds).
    batch_window_s: float = 0.002
    #: Admission ceiling: requests occupying the service at once.
    max_pending: int = 1024
    #: Max in-flight requests per tenant; 0 = unlimited.
    tenant_quota: int = 0
    #: Sharded result-cache directory; None disables caching.
    cache_dir: Optional[str] = None
    #: Per-batch watchdog deadline (seconds); 0 disables it.
    deadline_s: float = 0.0


@dataclass
class ServiceStats:
    """Lifetime counters + latency reservoir of one service."""

    requests: int = 0
    completed: int = 0
    cache_hits: int = 0
    #: Requests served by awaiting an identical in-flight request
    #: instead of dispatching a duplicate compile.
    coalesced: int = 0
    quota_rejections: int = 0
    batches: int = 0
    worker_crash_failures: int = 0
    deadline_timeouts: int = 0
    latencies_s: List[float] = field(default_factory=list)

    _LATENCY_CAP = 200_000

    def record_latency(self, latency_s: float) -> None:
        if len(self.latencies_s) < self._LATENCY_CAP:
            self.latencies_s.append(latency_s)

    def latency_percentile(self, q: float) -> float:
        """Linear-interpolated latency percentile (q in [0, 100])."""
        samples = sorted(self.latencies_s)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        rank = (q / 100.0) * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        return samples[low] + (samples[high] - samples[low]) * (rank - low)

    @property
    def cache_hit_rate(self) -> float:
        """Requests served without a compile (cache + coalescing)."""
        if not self.requests:
            return 0.0
        return (self.cache_hits + self.coalesced) / self.requests


class CompileService:
    """Async front door over the warm worker pool.

    Use as an async context manager (or call :meth:`start` /
    :meth:`aclose`)::

        async with CompileService(ServiceConfig(workers=4)) as service:
            reply = await service.submit(CompileRequest(loop=ddg))

    ``pool`` defaults to the process-wide :func:`shared_pool`; pass a
    dedicated :class:`WorkerPool` to isolate (or fault-inject) a
    service instance.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._own_pool = pool is None
        self._pool = pool or shared_pool(self.config.workers)
        self._cache: Optional[ShardedResultCache] = None
        if self.config.cache_dir:
            from ..analysis.engine import CACHE_VERSION

            self._cache = ShardedResultCache(
                self.config.cache_dir, version=CACHE_VERSION
            )
        self.stats = ServiceStats()
        self._inflight_by_tenant: Dict[str, int] = {}
        #: Cache key → future of the request already compiling it.
        self._inflight_keys: Dict[str, "asyncio.Future"] = {}
        self._admission = asyncio.Semaphore(self.config.max_pending)
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._dispatcher: Optional[asyncio.Task] = None
        self._batch_tasks: set = set()
        self._closing = False

    @property
    def cache(self) -> Optional[ShardedResultCache]:
        return self._cache

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    # -- lifecycle ------------------------------------------------------
    async def __aenter__(self) -> "CompileService":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def start(self) -> None:
        """Start the dispatcher (idempotent; needs a running loop)."""
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def aclose(self) -> None:
        """Drain in-flight batches and stop the dispatcher.

        The pool itself is left warm when it is the shared pool; a
        dedicated pool passed by the caller stays the caller's to close.
        """
        self._closing = True
        if self._dispatcher is not None:
            await self._queue.put(None)
            await self._dispatcher
            self._dispatcher = None
        if self._batch_tasks:
            await asyncio.gather(
                *list(self._batch_tasks), return_exceptions=True
            )
        self._closing = False

    # -- the request path ----------------------------------------------
    async def submit(self, request: CompileRequest) -> CompileReply:
        """Admit one request; resolves when its reply is ready."""
        started = time.perf_counter()
        quota = self.config.tenant_quota
        tenant = request.tenant
        inflight = self._inflight_by_tenant.get(tenant, 0)
        if quota and inflight >= quota:
            self.stats.quota_rejections += 1
            obs.count("service.quota_rejections")
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {inflight} requests "
                f"in flight (quota {quota})"
            )
        self._inflight_by_tenant[tenant] = inflight + 1
        self.stats.requests += 1
        obs.count("service.requests")
        try:
            async with self._admission:
                reply = await self._serve(request, started)
        finally:
            remaining = self._inflight_by_tenant[tenant] - 1
            if remaining:
                self._inflight_by_tenant[tenant] = remaining
            else:
                del self._inflight_by_tenant[tenant]
        self.stats.completed += 1
        self.stats.record_latency(reply.latency_s)
        return reply

    async def _serve(
        self, request: CompileRequest, started: float,
    ) -> CompileReply:
        key = None
        if self._cache is not None:
            key = self._request_key(request)
            hit = self._cache.get(key)
            if hit is not None:
                self.stats.cache_hits += 1
                obs.count("service.cache_hits")
                return self._reply_from_doc(
                    hit, cached=True,
                    latency_s=time.perf_counter() - started,
                )
            inflight = self._inflight_keys.get(key)
            if inflight is not None:
                # An identical request is already compiling: await its
                # result instead of dispatching a duplicate.
                self.stats.coalesced += 1
                obs.count("service.coalesced")
                doc, _pid = await asyncio.shield(inflight)
                return self._reply_from_doc(
                    doc, cached=True,
                    latency_s=time.perf_counter() - started,
                )
        if self._dispatcher is None or self._dispatcher.done():
            self.start()
        future = asyncio.get_running_loop().create_future()
        if key is not None:
            self._inflight_keys[key] = future
        try:
            await self._queue.put((request, key, future))
            doc, pid = await future
        finally:
            if (key is not None
                    and self._inflight_keys.get(key) is future):
                del self._inflight_keys[key]
        return self._reply_from_doc(
            doc, cached=False,
            latency_s=time.perf_counter() - started, pid=pid,
        )

    def _request_key(self, request: CompileRequest) -> str:
        machine = resolve_machine(request.machine)
        config = resolve_variant(request.variant)
        return compile_fingerprint(
            request.loop, machine, config, verify=request.verify
        )

    @staticmethod
    def _reply_from_doc(
        doc: Dict, cached: bool, latency_s: float, pid: int = 0,
    ) -> CompileReply:
        return CompileReply(
            loop=doc["loop"], status=doc["status"],
            ii=int(doc["ii"]), mii=int(doc["mii"]),
            copies=int(doc["copies"]), error=doc.get("error", ""),
            cached=cached, latency_s=latency_s, pid=pid,
        )

    # -- dispatch -------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            if self.config.batch_size > 1:
                deadline = (
                    asyncio.get_running_loop().time()
                    + self.config.batch_window_s
                )
                while len(batch) < self.config.batch_size:
                    try:
                        extra = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        timeout = (
                            deadline
                            - asyncio.get_running_loop().time()
                        )
                        if timeout <= 0:
                            break
                        try:
                            extra = await asyncio.wait_for(
                                self._queue.get(), timeout
                            )
                        except asyncio.TimeoutError:
                            break
                    if extra is None:
                        self._launch_batch(batch)
                        return
                    batch.append(extra)
            self._launch_batch(batch)

    def _launch_batch(self, batch: List[Tuple]) -> None:
        payload = [
            (request.loop, request.machine, request.variant,
             request.verify)
            for request, _, _ in batch
        ]
        self.stats.batches += 1
        obs.count("service.batches")
        pool_future = self._pool.submit(
            "compile_batch", payload,
            deadline=self.config.deadline_s or None,
        )
        task = asyncio.get_running_loop().create_task(
            self._finish_batch(batch, asyncio.wrap_future(pool_future))
        )
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _finish_batch(self, batch: List[Tuple], wrapped) -> None:
        try:
            result = await wrapped
        except DeadlineExceeded as exc:
            self.stats.deadline_timeouts += len(batch)
            obs.count("service.deadline_timeouts")
            self._fail_batch(batch, "timeout", str(exc))
            return
        except WorkerCrashError as exc:
            self.stats.worker_crash_failures += len(batch)
            obs.count("service.worker_crash_failures")
            self._fail_batch(batch, "failed", f"worker crashed: {exc}")
            return
        except Exception as exc:  # RemoteTaskError, pool closed, ...
            self._fail_batch(batch, "failed", str(exc))
            return
        for (request, key, future), doc in zip(batch, result.value):
            if self._cache is not None and key is not None:
                self._cache.put(key, doc)
            if not future.done():
                future.set_result((doc, result.pid))

    def _fail_batch(
        self, batch: List[Tuple], status: str, error: str,
    ) -> None:
        for request, _, future in batch:
            if not future.done():
                future.set_result(({
                    "loop": request.loop.name, "status": status,
                    "ii": 0, "mii": 0, "copies": 0, "error": error,
                }, 0))


async def replay(
    service: CompileService,
    requests,
    concurrency: int = 256,
) -> List[CompileReply]:
    """Drive a request sequence through the service, ``concurrency`` at
    a time, returning replies in request order (the benchmark loop)."""
    semaphore = asyncio.Semaphore(concurrency)

    async def one(request: CompileRequest) -> CompileReply:
        async with semaphore:
            return await service.submit(request)

    return list(await asyncio.gather(
        *(one(request) for request in requests)
    ))
