"""Compile-as-a-service: warm fork-server pool + async front door.

The serving layer the ROADMAP's north star asks for, and the repair for
the parallel-engine slowdown (cold per-run process fan-out used to lose
to serial on the corpus' millisecond-scale compile tasks):

* :mod:`repro.service.pool` — the persistent work-stealing
  :class:`WorkerPool` (fork-server start, warm presets, crash recovery,
  deadline recycle) shared by the experiment engine, ``repro lint`` /
  ``repro certify`` ``--workers``, and the front door;
* :mod:`repro.service.tasks` — the worker-side task registry and
  prewarm;
* :mod:`repro.service.cache` — the sharded content-addressed result
  cache keyed by compile fingerprints + the engine's ``CACHE_VERSION``;
* :mod:`repro.service.frontdoor` — :class:`CompileService`, the
  ``asyncio`` admission layer with backpressure, per-tenant quotas,
  and micro-batched dispatch.

See ``docs/SERVICE.md`` for the architecture and
``benchmarks/test_service.py`` (→ ``BENCH_service.json``) for the
replay benchmark.
"""

from .cache import ShardedResultCache
from .frontdoor import (
    CompileReply,
    CompileRequest,
    CompileService,
    QuotaExceededError,
    ServiceConfig,
    ServiceStats,
    replay,
)
from .pool import (
    DeadlineExceeded,
    PoolClosedError,
    PoolError,
    RemoteTaskError,
    TaskResult,
    WorkerCrashError,
    WorkerPool,
    shared_pool,
    shutdown_shared_pool,
)


def map_tasks(fn_name: str, payloads, workers: int = 1):
    """Run registered tasks over the shared warm pool, yielding values
    in submission order (the ``--workers`` CLI dispatch helper)."""
    pool = shared_pool(workers)
    yield from pool.map(fn_name, payloads)


__all__ = [
    "CompileReply",
    "CompileRequest",
    "CompileService",
    "DeadlineExceeded",
    "PoolClosedError",
    "PoolError",
    "QuotaExceededError",
    "RemoteTaskError",
    "ServiceConfig",
    "ServiceStats",
    "ShardedResultCache",
    "TaskResult",
    "WorkerCrashError",
    "WorkerPool",
    "map_tasks",
    "replay",
    "shared_pool",
    "shutdown_shared_pool",
]
