"""Worker-side task registry for the fork-server pool.

Every unit of work the pool can execute is a named function here, so

* the parent never pickles callables — a task message carries only the
  registry name plus a picklable payload;
* workers stay **warm**: this module imports the whole compile pipeline
  at import time and :func:`prewarm` builds every standard machine
  preset once, so a fork-server worker (which inherits the warm parent
  image) or a spawned worker (which pays the cost once at startup)
  serves every subsequent request from hot module and preset state.

Registered tasks:

``ping``
    Health/warm-up probe; returns the worker's pid and warm flag.
``sleep``
    Block the worker for N seconds — the deadline/drain test probe.
``engine_chunk``
    One experiment-engine chunk (:func:`repro.analysis.engine._run_chunk`).
``lint_loop``
    Deep-lint one loop (the ``repro lint --workers`` unit).
``lint_source``
    SRC8xx self-lint one Python file (``repro lint --src --workers``).
``certify_loop``
    Compile + certify one loop (the ``repro certify --workers`` unit).
``compile_batch``
    One front-door micro-batch of compile requests
    (:mod:`repro.service.frontdoor`).
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Tuple

# Imported eagerly so fork-server children inherit a warm interpreter
# image and spawned workers front-load the cost before their first task.
from ..core.driver import CompilationError, compile_loop
from ..core.variants import ALL_VARIANTS, AssignmentConfig
from ..machine.machine import Machine
from ..machine.presets import STANDARD_PRESETS

#: Slugged variant name ("heuristic-iterative") → AssignmentConfig; the
#: same naming the CLI exposes.
VARIANTS: Dict[str, AssignmentConfig] = {
    config.name.lower().replace(" ", "-"): config
    for config in ALL_VARIANTS
}

_PRESETS: Dict[str, Machine] = {}
_WARM = False
_WARM_LOCK = threading.Lock()


def prewarm() -> None:
    """Build every standard machine preset once (idempotent).

    Lock-guarded double-checked warm-up: the front door's threads and
    a worker's first task may race here, and the SRC801 self-lint
    rightly refuses unguarded rebinds of module globals.
    """
    global _WARM
    if _WARM:
        return
    with _WARM_LOCK:
        if _WARM:
            return
        for name, build in STANDARD_PRESETS.items():
            _PRESETS[name] = build()
        # Per-process warm cache is the point: each worker warms its
        # own presets once and never shares them back.
        _WARM = True  # lint: allow CONC902


def resolve_machine(ref) -> Machine:
    """A concrete machine from a preset name or a pickled Machine."""
    if isinstance(ref, str):
        prewarm()
        try:
            return _PRESETS[ref]
        except KeyError:
            raise ValueError(
                f"unknown machine preset {ref!r}; choose from "
                f"{sorted(_PRESETS)}"
            )
    return ref


def resolve_variant(ref) -> AssignmentConfig:
    """A concrete config from a slug name or a pickled config."""
    if isinstance(ref, str):
        try:
            return VARIANTS[ref]
        except KeyError:
            raise ValueError(
                f"unknown variant {ref!r}; choose from {sorted(VARIANTS)}"
            )
    return ref


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------
def ping(payload) -> Dict[str, object]:
    """Warm-up / health probe."""
    prewarm()
    return {"pid": os.getpid(), "warm": _WARM, "echo": payload}


def sleep(payload) -> float:
    """Block the worker for ``payload`` seconds (deadline/drain probe)."""
    import time

    seconds = float(payload)
    time.sleep(seconds)
    return seconds


def engine_chunk(payload):
    """One experiment-engine chunk (imported lazily: the engine imports
    the pool, so a module-level import here would be a cycle)."""
    from ..analysis.engine import _run_chunk

    return _run_chunk(payload)


def lint_loop(payload):
    """Deep-lint one loop: payload is (ddg, machine, config, variant)."""
    from ..lint import lint_loop_deep

    ddg, machine, config, variant = payload
    return lint_loop_deep(ddg, machine, config, variant)


def lint_source(payload):
    """SRC8xx-lint one source file: payload is (name, text, config)."""
    from ..lint import lint_source_file
    from ..lint.source import SourceFile

    name, text, config = payload
    return lint_source_file(SourceFile(path=name, text=text), config)


def certify_loop(payload):
    """Compile + certify one loop into a lint-style report."""
    from ..certify.gate import certify_loop_report

    ddg, machine, variant, certify_config, severity = payload
    return certify_loop_report(
        ddg, machine, variant, certify_config, severity
    )


def compile_batch(
    payload: List[Tuple],
) -> List[Dict[str, object]]:
    """One front-door micro-batch: compile each request in order.

    Each item is ``(ddg, machine_ref, variant_ref, verify)``; machine /
    variant refs may be preset/slug names (resolved against the warm
    tables) or pickled objects.  Replies mirror the serial reference's
    exception taxonomy so service outcomes stay bit-identical to a
    direct :func:`repro.core.driver.compile_loop` call.
    """
    replies: List[Dict[str, object]] = []
    for ddg, machine_ref, variant_ref, verify in payload:
        machine = resolve_machine(machine_ref)
        config = resolve_variant(variant_ref)
        try:
            compiled = compile_loop(
                ddg, machine, config=config, verify=verify
            )
        except CompilationError as exc:
            replies.append({
                "loop": ddg.name, "status": "failed",
                "ii": 0, "mii": 0, "copies": 0, "error": str(exc),
            })
        except ValueError as exc:
            replies.append({
                "loop": ddg.name, "status": "failed",
                "ii": 0, "mii": 0, "copies": 0,
                "error": f"invalid loop: {exc}",
            })
        else:
            replies.append({
                "loop": ddg.name, "status": "ok",
                "ii": compiled.ii, "mii": compiled.mii,
                "copies": compiled.copy_count, "error": "",
            })
    return replies


TASKS: Dict[str, Callable] = {
    "ping": ping,
    "sleep": sleep,
    "engine_chunk": engine_chunk,
    "lint_loop": lint_loop,
    "lint_source": lint_source,
    "certify_loop": certify_loop,
    "compile_batch": compile_batch,
}


def resolve(name: str) -> Callable:
    """The registered task function for ``name`` (KeyError if unknown)."""
    return TASKS[name]
