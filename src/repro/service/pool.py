"""Persistent fork-server worker pool with work-stealing dispatch.

The one process-fan-out implementation in the repository: the
experiment engine (:mod:`repro.analysis.engine`), the ``repro lint`` /
``repro certify`` ``--workers`` paths, and the compile service's async
front door all dispatch through a :class:`WorkerPool`.

Why not ``ProcessPoolExecutor``?  The corpus' per-loop compiles are a
few milliseconds each, so cold per-run pool startup and per-call
pickling dominated — the old fan-out *lost* to serial (0.78x on the
1-core container, BENCH_parallel_engine.json).  This pool fixes the
cost model:

* **fork-server start** — workers are created from a ``forkserver``
  (falling back to ``fork`` / ``spawn``) context; with
  :mod:`repro.service.tasks` imported before the first fork, every
  worker is born with the whole compile pipeline already imported and
  :func:`~repro.service.tasks.prewarm`-ed machine presets;
* **persistence** — the module-level :func:`shared_pool` keeps one pool
  warm across requests/runs for the life of the process, so only the
  first dispatch ever pays startup;
* **work stealing** — all workers pull from one shared task queue, so
  an idle worker steals the next chunk regardless of who was "assigned"
  what; callers keep deterministic results by merging futures in
  submission order;
* **fault tolerance** — a worker that dies mid-task is detected by the
  collector thread, its in-flight task is retried on a live worker (up
  to ``max_task_retries``), and a replacement worker is spawned; a task
  that exceeds its ``deadline`` gets its worker killed and recycled
  (the portable budget fallback for code SIGALRM cannot reach) and its
  future fails with :class:`DeadlineExceeded`;
* **graceful drain** — ``close()`` finishes outstanding work, stops
  workers with sentinels, and joins them.

Task results resolve to :class:`TaskResult`, which carries the worker
pid and the queue-wait/execute split so callers can attribute per-lane
timelines (see ``docs/EXPERIMENT_ENGINE.md``).
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import os
import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

from . import tasks as task_registry

#: How often the collector polls worker liveness while idle (seconds).
_POLL_INTERVAL = 0.05

_MSG_TASK = "task"
_MSG_STOP = "stop"


class PoolError(RuntimeError):
    """Base class for pool-side failures."""


class PoolClosedError(PoolError):
    """Submit after close, or close(drain=False) abandoned the task."""


class WorkerCrashError(PoolError):
    """The task's worker died and the retry budget is exhausted."""


class DeadlineExceeded(PoolError):
    """The task outlived its deadline; its worker was recycled."""


class RemoteTaskError(PoolError):
    """The task function raised inside the worker.

    ``remote_traceback`` carries the worker-side traceback text.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


@dataclass(frozen=True)
class TaskResult:
    """One completed task: its value plus worker attribution facts."""

    value: object
    pid: int
    #: Seconds the task sat in the shared queue before a worker took it.
    queue_wait_s: float
    #: Seconds the worker spent executing the task function.
    execute_s: float


@dataclass
class PoolStats:
    """Lifetime counters of one pool (monotonic, never reset)."""

    submitted: int = 0
    completed: int = 0
    task_errors: int = 0
    retries: int = 0
    crashes: int = 0
    deadline_kills: int = 0
    workers_recycled: int = 0


class _Pending:
    """Parent-side record of one in-flight task."""

    __slots__ = ("task_id", "fn_name", "payload", "future", "deadline",
                 "retries_left", "submitted_wall", "started_wall", "pid")

    def __init__(self, task_id, fn_name, payload, future, deadline,
                 retries_left) -> None:
        self.task_id = task_id
        self.fn_name = fn_name
        self.payload = payload
        self.future = future
        self.deadline = deadline
        self.retries_left = retries_left
        self.submitted_wall = time.time()
        self.started_wall: Optional[float] = None
        self.pid: Optional[int] = None


def _worker_main(task_queue, result_queue, crash_once_path) -> None:
    """Worker loop: steal tasks from the shared queue until a sentinel.

    ``crash_once_path`` is a fault-injection hook for the crash-recovery
    tests: the first worker to pick up a task while the file does not
    exist creates it and dies hard (``os._exit``), exactly like a
    segfaulting compile would.
    """
    task_registry.prewarm()
    # The prewarmed module/preset graph is permanent: freeze it out of
    # the collector's young generations so per-request allocation bursts
    # (payload unpickling, schedule tables) don't pay to re-scan it.
    gc.collect()
    gc.freeze()
    pid = os.getpid()
    while True:
        message = task_queue.get()
        if message[0] == _MSG_STOP:
            break
        _, task_id, fn_name, payload, submitted_wall = message
        started_wall = time.time()
        result_queue.put(("started", task_id, pid, started_wall))
        if crash_once_path and not os.path.exists(crash_once_path):
            with open(crash_once_path, "w") as handle:
                handle.write(str(pid))
            os._exit(13)
        try:
            fn = task_registry.resolve(fn_name)
            execute_started = time.perf_counter()
            value = fn(payload)
            execute_s = time.perf_counter() - execute_started
        except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
            result_queue.put((
                "error", task_id, pid,
                f"{type(exc).__name__}: {exc}", traceback.format_exc(),
            ))
        else:
            meta = (max(0.0, started_wall - submitted_wall), execute_s)
            try:
                result_queue.put(("done", task_id, pid, value, meta))
            except Exception as exc:  # unpicklable result
                result_queue.put((
                    "error", task_id, pid,
                    f"unpicklable task result: {exc}",
                    traceback.format_exc(),
                ))


def _pick_context() -> multiprocessing.context.BaseContext:
    """The best available start method: forkserver > fork > spawn.

    ``REPRO_SERVICE_START_METHOD`` overrides the choice.  The
    fork-server keeps worker creation cheap *and* safe to call from a
    process that already runs threads (the collector); plain ``fork``
    is the fallback on platforms without it.
    """
    preferred = os.environ.get("REPRO_SERVICE_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    order = [preferred] if preferred else ["forkserver", "fork", "spawn"]
    for method in order:
        if method in methods:
            context = multiprocessing.get_context(method)
            if method == "forkserver":
                try:
                    context.set_forkserver_preload(
                        ["repro.service.tasks"]
                    )
                except Exception:  # pragma: no cover - best effort
                    pass
            return context
    return multiprocessing.get_context()  # pragma: no cover


class WorkerPool:
    """A persistent pool of warm worker processes.

    ``workers`` processes are started eagerly; :meth:`submit` enqueues a
    registered task (see :mod:`repro.service.tasks`) and returns a
    :class:`concurrent.futures.Future` resolving to a
    :class:`TaskResult`.  All submission is thread-safe.

    ``max_task_retries`` bounds how many times a task lost to a worker
    crash is retried before its future fails with
    :class:`WorkerCrashError`.  ``task_deadline`` (seconds) is a default
    per-task watchdog budget — 0 disables it; :meth:`submit` can
    override per task.  ``crash_once`` is the fault-injection hook
    documented on :func:`_worker_main`.
    """

    def __init__(
        self,
        workers: int = 1,
        max_task_retries: int = 2,
        task_deadline: float = 0.0,
        crash_once: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a pool needs at least 1 worker")
        self._context = _pick_context()
        self._task_queue = self._context.Queue()
        # SimpleQueue writes synchronously (no feeder thread), so a
        # worker that hard-exits right after reporting "started" cannot
        # lose the message in an unflushed buffer — the crash detector
        # depends on that ordering to know which task to retry.
        self._result_queue = self._context.SimpleQueue()
        self._max_task_retries = max_task_retries
        self._task_deadline = task_deadline
        self._crash_once = crash_once
        self._lock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        self._workers: List = []
        self._next_task_id = 0
        self._closed = False
        self.stats = PoolStats()
        for _ in range(workers):
            self._spawn_worker()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-pool-collector",
            daemon=True,
        )
        self._collector.start()

    # -- lifecycle ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def n_workers(self) -> int:
        """Live worker count."""
        with self._lock:
            return sum(
                1 for process in self._workers if process.is_alive()
            )

    def _spawn_worker(self) -> None:
        process = self._context.Process(
            target=_worker_main,
            args=(self._task_queue, self._result_queue,
                  self._crash_once),
            daemon=True,
        )
        process.start()
        self._workers.append(process)

    def ensure_workers(self, workers: int) -> None:
        """Grow the pool so at least ``workers`` processes are alive."""
        if self._closed:
            raise PoolClosedError("pool is closed")
        with self._lock:
            alive = sum(
                1 for process in self._workers if process.is_alive()
            )
            for _ in range(max(0, workers - alive)):
                self._spawn_worker()

    def warm_up(self, timeout: float = 30.0) -> None:
        """Block until every worker has served one ``ping`` (presets
        built, pipeline imported) — useful before benchmarking."""
        count = self.n_workers
        futures = [self.submit("ping", index) for index in range(count)]
        for future in futures:
            future.result(timeout=timeout)

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.

        ``drain=True`` waits for outstanding tasks first; otherwise
        outstanding futures fail with :class:`PoolClosedError` and the
        workers are terminated.
        """
        if self._closed:
            return
        self._closed = True
        if drain:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending:
                        break
                time.sleep(_POLL_INTERVAL / 5)
        with self._lock:
            for pending in list(self._pending.values()):
                if not pending.future.done():
                    pending.future.set_exception(
                        PoolClosedError("pool closed before completion")
                    )
            self._pending.clear()
            workers = list(self._workers)
        for _ in workers:
            try:
                self._task_queue.put((_MSG_STOP,))
            except Exception:  # pragma: no cover - queue torn down
                break
        for process in workers:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._collector.join(timeout=2.0)
        self._task_queue.close()
        self._result_queue.close()

    # -- submission -----------------------------------------------------
    def submit(
        self, fn_name: str, payload,
        deadline: Optional[float] = None,
    ) -> Future:
        """Enqueue one task; the Future resolves to a TaskResult."""
        if self._closed:
            raise PoolClosedError("pool is closed")
        if fn_name not in task_registry.TASKS:
            raise KeyError(f"unknown task {fn_name!r}")
        future: Future = Future()
        with self._lock:
            task_id = self._next_task_id
            self._next_task_id += 1
            pending = _Pending(
                task_id, fn_name, payload, future,
                self._task_deadline if deadline is None else deadline,
                self._max_task_retries,
            )
            self._pending[task_id] = pending
            self.stats.submitted += 1
        self._enqueue(pending)
        return future

    def map(self, fn_name: str, payloads,
            deadline: Optional[float] = None):
        """Submit every payload, then yield values in submission order
        (deterministic merge regardless of completion order)."""
        futures = [
            self.submit(fn_name, payload, deadline=deadline)
            for payload in payloads
        ]
        for future in futures:
            yield future.result().value

    def _enqueue(self, pending: _Pending) -> None:
        pending.started_wall = None
        pending.pid = None
        pending.submitted_wall = time.time()
        self._task_queue.put((
            _MSG_TASK, pending.task_id, pending.fn_name,
            pending.payload, pending.submitted_wall,
        ))

    # -- collector ------------------------------------------------------
    def _wait_for_result(self, timeout: float) -> bool:
        """Block until a result message is readable, or timeout."""
        reader = getattr(self._result_queue, "_reader", None)
        if reader is not None:
            return reader.poll(timeout)
        deadline = time.monotonic() + timeout  # pragma: no cover
        while time.monotonic() < deadline:  # pragma: no cover
            if not self._result_queue.empty():
                return True
            time.sleep(0.002)
        return False  # pragma: no cover

    def _collect_loop(self) -> None:
        while True:
            try:
                if not self._wait_for_result(_POLL_INTERVAL):
                    if self._closed and not self._pending:
                        return
                    self._check_deadlines()
                    self._check_workers()
                    continue
                message = self._result_queue.get()
            except (EOFError, OSError):  # pragma: no cover - teardown
                return
            self._handle(message)
            if self._closed and not self._pending:
                return

    def _handle(self, message) -> None:
        kind = message[0]
        if kind == "started":
            _, task_id, pid, started_wall = message
            with self._lock:
                pending = self._pending.get(task_id)
                if pending is not None:
                    pending.started_wall = started_wall
                    pending.pid = pid
            return
        if kind == "done":
            _, task_id, pid, value, (queue_wait_s, execute_s) = message
            with self._lock:
                pending = self._pending.pop(task_id, None)
                if pending is not None:
                    self.stats.completed += 1
            if pending is not None and not pending.future.done():
                pending.future.set_result(TaskResult(
                    value=value, pid=pid,
                    queue_wait_s=queue_wait_s, execute_s=execute_s,
                ))
            return
        if kind == "error":
            _, task_id, pid, text, remote_traceback = message
            with self._lock:
                pending = self._pending.pop(task_id, None)
                if pending is not None:
                    self.stats.task_errors += 1
            if pending is not None and not pending.future.done():
                pending.future.set_exception(
                    RemoteTaskError(text, remote_traceback)
                )

    def _check_workers(self) -> None:
        """Detect crashed workers: retry their tasks, spawn replacements."""
        with self._lock:
            dead = [
                process for process in self._workers
                if not process.is_alive()
            ]
            if not dead:
                return
            for process in dead:
                self._workers.remove(process)
            dead_pids = {process.pid for process in dead}
            lost = [
                pending for pending in self._pending.values()
                if pending.pid in dead_pids
                and pending.started_wall is not None
            ]
            self.stats.crashes += len(lost)
            replacements = 0 if self._closed else len(dead)
        for pending in lost:
            self._retry_or_fail(pending)
        for _ in range(replacements):
            self.stats.workers_recycled += 1
            with self._lock:
                self._spawn_worker()

    def _check_deadlines(self) -> None:
        """Kill + recycle workers whose current task blew its deadline.

        This is the portable enforcement path for budgets SIGALRM
        cannot reach (the in-worker :class:`_TimeBudget` handles the
        common case on the worker's main thread; this backstop catches
        code stuck in C or a wedged worker).
        """
        now = time.time()
        with self._lock:
            overdue = [
                pending for pending in self._pending.values()
                if pending.deadline and pending.started_wall is not None
                and now - pending.started_wall > pending.deadline
            ]
        for pending in overdue:
            with self._lock:
                if pending.task_id not in self._pending:
                    continue  # finished while we looked
                del self._pending[pending.task_id]
                self.stats.deadline_kills += 1
                victim = next(
                    (process for process in self._workers
                     if process.pid == pending.pid), None,
                )
            if victim is not None:
                victim.terminate()
                victim.join(timeout=1.0)
            if not pending.future.done():
                pending.future.set_exception(DeadlineExceeded(
                    f"task {pending.fn_name!r} exceeded its "
                    f"{pending.deadline:g}s deadline; worker "
                    f"{pending.pid} recycled"
                ))
            # _check_workers spawns the replacement on its next pass.

    def _retry_or_fail(self, pending: _Pending) -> None:
        if pending.retries_left > 0 and not self._closed:
            pending.retries_left -= 1
            with self._lock:
                self.stats.retries += 1
            self._enqueue(pending)
            return
        with self._lock:
            self._pending.pop(pending.task_id, None)
        if not pending.future.done():
            pending.future.set_exception(WorkerCrashError(
                f"worker {pending.pid} died executing "
                f"{pending.fn_name!r} and the retry budget is exhausted"
            ))


# ----------------------------------------------------------------------
# The shared warm pool
# ----------------------------------------------------------------------
_shared: Optional[WorkerPool] = None
_shared_lock = threading.Lock()


def shared_pool(workers: int = 1) -> WorkerPool:
    """The process-wide warm pool, grown to at least ``workers``.

    The first caller pays pool startup; every later dispatch — another
    experiment run, a lint sweep, the async front door — reuses the
    same warm workers.  The pool is shut down at interpreter exit.
    """
    global _shared
    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = WorkerPool(workers=max(1, workers))
        else:
            _shared.ensure_workers(workers)
        return _shared


def shutdown_shared_pool() -> None:
    """Drain and stop the shared pool (tests / interpreter exit)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None and not pool.closed:
        pool.close(drain=True, timeout=5.0)


atexit.register(shutdown_shared_pool)
