#!/usr/bin/env python3
"""From loop to machine code: the full backend pipeline.

Takes one kernel through every stage a production compiler would run on
a clustered VLIW target:

1. cluster assignment + modulo scheduling (the paper's two phases),
2. stage scheduling to shrink register lifetimes,
3. register allocation by modulo variable expansion,
4. software-pipeline expansion into prologue / kernel / epilogue
   (plus the predicated kernel-only alternative),
5. cycle-accurate simulated execution checked against a sequential
   reference interpreter.

Run:  python examples/pipelined_codegen.py [kernel-name]
"""

import sys

from repro import compile_loop, four_cluster_fs
from repro.analysis.registers import (
    format_pressure,
    mve_unroll_factor,
    register_pressure,
)
from repro.codegen import (
    expand_pipeline,
    format_kernel_only,
    format_pipelined,
)
from repro.regalloc import (
    allocate_mve,
    allocate_rotating,
    verify_allocation,
)
from repro.scheduling import stage_schedule
from repro.sim import simulate_schedule
from repro.workloads import build_kernel, kernel_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lk5_tridiag"
    if name not in kernel_names():
        raise SystemExit(f"unknown kernel {name!r}; try: {kernel_names()}")
    loop = build_kernel(name)
    machine = four_cluster_fs()

    print(f"=== 1+2. assign + schedule: {name} on {machine} ===")
    result = compile_loop(loop, machine, verify=True)
    print(f"II = {result.ii}, {result.copy_count} copies, "
          f"{result.schedule.stage_count} stages")
    print()

    print("=== 3. stage scheduling ===")
    staged = stage_schedule(result.schedule)
    print(f"lifetime sum {staged.lifetime_before} -> "
          f"{staged.lifetime_after} cycles ({staged.moves} stage moves)")
    schedule = staged.schedule
    print(format_pressure(register_pressure(schedule)))
    print()

    print("=== 4. register allocation (modulo variable expansion) ===")
    allocation = allocate_mve(schedule)
    problems = verify_allocation(allocation)
    print(f"unroll factor {allocation.unroll} "
          f"(= {mve_unroll_factor(schedule)} from lifetime analysis)")
    for cluster in sorted(allocation.registers_per_cluster):
        print(f"  C{cluster}: {allocation.registers(cluster)} registers")
    print(f"allocation check: "
          f"{'OK' if not problems else problems[:3]}")
    rotating = allocate_rotating(schedule)
    print(f"rotating-file alternative (no unrolling): "
          f"{rotating.total_registers} registers")
    print()

    print("=== 5. pipelined code ===")
    code = expand_pipeline(schedule)
    print(format_pipelined(code, schedule))
    print()
    print(f"flat code: {code.static_instruction_count} static slots "
          f"(expansion x{code.expansion_factor(len(result.annotated.ddg)):.1f}"
          f"), valid for trip counts >= {code.min_trip_count()}")
    print()
    print(format_kernel_only(schedule))
    print()

    print("=== 6. simulated execution vs sequential reference ===")
    report = simulate_schedule(loop, schedule, n_iterations=8)
    print(f"{report.checked_values} values over {report.n_iterations} "
          f"iterations, {report.cycles} cycles: "
          f"{'ALL MATCH' if report.ok else 'MISMATCH'}")


if __name__ == "__main__":
    main()
