#!/usr/bin/env python3
"""Interconnect topology study: broadcast buses vs point-to-point grid.

The paper's most constrained machine is the 2x2 grid — no broadcast,
three units per cluster, diagonal neighbors two hops apart.  This example
compares it against an equally-clustered bused machine across the whole
kernel library and reports where the limited topology costs cycles.

Run:  python examples/topology_study.py
"""

from repro import compile_loop, four_cluster_fs, four_cluster_grid
from repro.analysis import histogram_of
from repro.workloads import all_kernels


def main() -> None:
    grid = four_cluster_grid()
    bused = four_cluster_fs()

    print(f"Grid machine:  {grid}")
    print(f"Bused machine: {bused}")
    print()
    header = (
        f"{'kernel':<24} {'II(uni)':>8} {'II(bus)':>8} {'II(grid)':>9} "
        f"{'cp(bus)':>8} {'cp(grid)':>9}"
    )
    print(header)
    print("-" * len(header))

    bus_devs, grid_devs = [], []
    for loop in all_kernels():
        uni_ii = compile_loop(loop, grid.unified_equivalent()).ii
        bus_result = compile_loop(loop, bused, verify=True)
        grid_result = compile_loop(loop, grid, verify=True)
        # The two machines have different widths; compare each to its
        # own equally wide unified machine.
        bus_uni = compile_loop(loop, bused.unified_equivalent()).ii
        bus_devs.append(bus_result.ii - bus_uni)
        grid_devs.append(grid_result.ii - uni_ii)
        print(
            f"{loop.name:<24} {uni_ii:>8} {bus_result.ii:>8} "
            f"{grid_result.ii:>9} {bus_result.copy_count:>8} "
            f"{grid_result.copy_count:>9}"
        )

    print("-" * len(header))
    bus_hist = histogram_of(bus_devs)
    grid_hist = histogram_of(grid_devs)
    print(f"bused 4-cluster: {bus_hist.match_percentage:.0f}% of kernels "
          f"match their unified II "
          f"(mean deviation {bus_hist.mean_deviation:.2f} cycles)")
    print(f"grid 4-cluster:  {grid_hist.match_percentage:.0f}% of kernels "
          f"match their unified II "
          f"(mean deviation {grid_hist.mean_deviation:.2f} cycles)")
    print()
    print("The grid's missing broadcast and two-hop diagonal show up as")
    print("extra copies; the assignment algorithm still hides most of the")
    print("communication latency inside the II (paper Section 6: 92% at")
    print("x=0, 98% within one cycle on the full suite).")


if __name__ == "__main__":
    main()
