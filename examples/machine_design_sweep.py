#!/usr/bin/env python3
"""Architect's workflow: how many buses and ports does a machine need?

Reproduces the paper's design-space methodology (Figures 14-17) on a
compact loop sample: sweep bus and port counts for 2- and 4-cluster GP
machines, find the point of diminishing returns, and print a
recommendation — the same analysis that yields the paper's Table 3.

Run:  python examples/machine_design_sweep.py  [n_loops]
"""

import sys

from repro.analysis import UnifiedBaseline, run_experiment
from repro.machine import bused_machine
from repro.machine.units import PAPER_GP_MIX
from repro.workloads import paper_suite


def sweep(loops, n_clusters, buses_options, ports_options, baseline):
    """Match percentage for each (buses, ports) combination."""
    table = {}
    for buses in buses_options:
        for ports in ports_options:
            machine = bused_machine(n_clusters, PAPER_GP_MIX, buses, ports)
            result = run_experiment(loops, machine, baseline=baseline)
            table[(buses, ports)] = result.match_percentage
    return table


def print_grid(title, table, buses_options, ports_options):
    print(title)
    corner = "buses / ports"
    header = f"{corner:>14}" + "".join(
        f"{p:>9}" for p in ports_options
    )
    print(header)
    for buses in buses_options:
        row = f"{buses:>14}" + "".join(
            f"{table[(buses, ports)]:>8.1f}%" for ports in ports_options
        )
        print(row)
    print()


def recommend(table, buses_options, ports_options, threshold=3.0):
    """Smallest configuration within `threshold` percent of the best."""
    best = max(table.values())
    candidates = [
        (buses * 2 + ports, buses, ports)
        for buses in buses_options
        for ports in ports_options
        if table[(buses, ports)] >= best - threshold
    ]
    _, buses, ports = min(candidates)
    return buses, ports


def main() -> None:
    n_loops = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    loops = paper_suite(n_loops)
    baseline = UnifiedBaseline()
    print(f"Sweeping over {n_loops} loops "
          f"(pass a number to change, e.g. 1327 for paper scale)\n")

    for n_clusters, buses_options, ports_options in (
        (2, (1, 2, 4), (1, 2)),
        (4, (2, 4, 8), (1, 2, 4)),
    ):
        table = sweep(
            loops, n_clusters, buses_options, ports_options, baseline
        )
        print_grid(
            f"{n_clusters}-cluster machine — % of loops matching the "
            f"unified II:",
            table, buses_options, ports_options,
        )
        buses, ports = recommend(table, buses_options, ports_options)
        print(f"  -> recommended: {buses} buses, {ports} port(s) per "
              f"cluster (paper Table 3: "
              f"{'2 buses / 1 port' if n_clusters == 2 else '4 buses / 2 ports'})\n")


if __name__ == "__main__":
    main()
