#!/usr/bin/env python3
"""DSP kernels on a clustered VLIW — the paper's motivating scenario.

Clustered VLIWs dominated the DSP space (TI C6x, Lx/ST200, HP/STM).
This example software-pipelines a set of signal-processing kernels (FIR
filter, FFT butterfly, complex multiply, EMA filter, Givens rotation)
for the 4-cluster fully-specified machine, and shows how much of the
inter-cluster communication the assignment algorithm hides.

Run:  python examples/dsp_kernels.py
"""

from repro import compile_loop, four_cluster_fs
from repro.ddg import mii
from repro.workloads import build_kernel

DSP_KERNELS = [
    "fir_filter_4tap",
    "butterfly_fft",
    "complex_multiply",
    "ema_filter",
    "givens_rotation",
    "stencil_3pt",
    "table_lookup_interp",
]


def main() -> None:
    machine = four_cluster_fs()
    unified = machine.unified_equivalent()

    print(f"Machine: {machine}")
    print(f"Unified comparison machine: {unified}")
    print()
    header = (
        f"{'kernel':<22} {'ops':>4} {'MII':>4} {'II(uni)':>8} "
        f"{'II(clu)':>8} {'copies':>7} {'hidden?':>8}"
    )
    print(header)
    print("-" * len(header))

    matched = 0
    for name in DSP_KERNELS:
        loop = build_kernel(name)
        clustered = compile_loop(loop, machine, verify=True)
        baseline = compile_loop(loop, unified, verify=True)
        hidden = "yes" if clustered.ii == baseline.ii else (
            f"+{clustered.ii - baseline.ii}"
        )
        if clustered.ii == baseline.ii:
            matched += 1
        print(
            f"{name:<22} {len(loop):>4} {mii(loop, unified):>4} "
            f"{baseline.ii:>8} {clustered.ii:>8} "
            f"{clustered.copy_count:>7} {hidden:>8}"
        )

    print("-" * len(header))
    print(f"{matched}/{len(DSP_KERNELS)} kernels run at the unified "
          f"machine's II — communication fully hidden.")
    print()

    # Show one kernel's pipelined schedule in full.
    loop = build_kernel("butterfly_fft")
    result = compile_loop(loop, machine, verify=True)
    print(f"FFT butterfly kernel at II={result.ii} "
          f"({result.schedule.stage_count} stages):")
    print(result.schedule.format_kernel())


if __name__ == "__main__":
    main()
