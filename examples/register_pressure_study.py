#!/usr/bin/env python3
"""Register pressure on clustered machines — why clustering exists.

The whole motivation for clustering (paper Section 1.1) is register-file
cost: area grows quadratically in ports, cycle time logarithmically in
registers.  This example measures the flip side: after cluster
assignment, how many live values does each small per-cluster register
file actually hold, how does the paper's recommended *stage scheduling*
post-pass (Section 1.2) shrink that, and what modulo-variable-expansion
unroll factor would a rotating-register-free machine need?

Run:  python examples/register_pressure_study.py
"""

from repro import compile_loop, four_cluster_gp
from repro.analysis.registers import mve_unroll_factor, register_pressure
from repro.scheduling import stage_schedule
from repro.workloads import all_kernels


def main() -> None:
    machine = four_cluster_gp()
    print(f"Machine: {machine}")
    print()
    header = (
        f"{'kernel':<24} {'II':>3} {'MaxLive':>8} {'staged':>7} "
        f"{'saved':>6} {'MVE':>4}"
    )
    print(header)
    print("-" * len(header))

    total_before = total_after = 0
    for loop in all_kernels():
        result = compile_loop(loop, machine, verify=True)
        before = register_pressure(result.schedule)
        staged = stage_schedule(result.schedule)
        after = register_pressure(staged.schedule)
        saved = before.total_max_live - after.total_max_live
        total_before += before.total_max_live
        total_after += after.total_max_live
        print(
            f"{loop.name:<24} {result.ii:>3} "
            f"{before.total_max_live:>8} {after.total_max_live:>7} "
            f"{saved:>6} {mve_unroll_factor(staged.schedule):>4}"
        )

    print("-" * len(header))
    pct = 100.0 * (total_before - total_after) / max(total_before, 1)
    print(f"stage scheduling removes {total_before - total_after} of "
          f"{total_before} live values across the kernel library "
          f"({pct:.0f}%).")
    print()
    print("Per-cluster register files stay small: the per-cluster MaxLive")
    print("is what each clustered register file must hold, versus the sum")
    print("for a unified machine's single file — the paper's scalability")
    print("argument in numbers.")


if __name__ == "__main__":
    main()
