#!/usr/bin/env python3
"""Quickstart: compile one loop for a clustered VLIW machine.

Builds the paper's introductory example (Section 3), runs the full
two-phase process — cluster assignment, then traditional modulo
scheduling — on the 2-cluster machine, and prints everything the
assignment produced: cluster tags, inserted copies, and the final
software-pipelined kernel.

Run:  python examples/quickstart.py
"""

from repro import Opcode, build_ddg, compile_loop, two_cluster_gp
from repro.ddg import find_sccs, mii, rec_mii


def main() -> None:
    # The paper's Figure 6 loop: one recurrence (B -> C -> D -> B).
    loop = build_ddg(
        ops=[
            ("a", Opcode.ALU),
            ("b", Opcode.ALU),
            ("c", Opcode.LOAD),   # the 2-cycle operation
            ("d", Opcode.ALU),
            ("e", Opcode.ALU),
            ("f", Opcode.ALU),
        ],
        deps=[
            ("a", "b", 0),
            ("b", "c", 0),
            ("c", "d", 0),
            ("d", "b", 1),  # loop-carried: recurrence of distance 1
            ("d", "e", 0),
            ("e", "f", 0),
        ],
        name="intro-example",
    )

    machine = two_cluster_gp()  # 2 clusters x 4 GP units, 2 buses, 1 port
    unified = machine.unified_equivalent()

    print(f"Loop: {loop}")
    print(f"RecMII = {rec_mii(loop)}   MII = {mii(loop, unified)}")
    for scc in find_sccs(loop):
        names = sorted(loop.node(n).name for n in scc.nodes)
        print(f"SCC {scc.index}: {names} (RecMII {scc.rec_mii})")
    print()

    result = compile_loop(loop, machine, verify=True)
    print(f"Machine: {machine}")
    print(f"Final II = {result.ii} (unified-machine MII was {result.mii})")
    print(f"Copies inserted: {result.copy_count}")
    print()

    print("Cluster assignment:")
    for node in result.annotated.ddg.nodes:
        cluster = result.annotated.cluster_of[node.node_id]
        marker = "  [copy]" if node.is_copy else ""
        print(f"  {str(node):<16} -> C{cluster}{marker}")
    print()

    print(f"Kernel (II = {result.ii} cycles/iteration, "
          f"{result.schedule.stage_count} stages):")
    print(result.schedule.format_kernel())
    print()

    # On the paper's hypothetical machine (one GP unit per cluster,
    # Section 3) the loop cannot fit one cluster: the assignment must
    # split it and insert a copy — the Figure 8 walk-through.
    from repro.machine import bused_machine, gp_units

    toy = bused_machine(2, gp_units(1), buses=2, ports=1, name="toy")
    toy_result = compile_loop(loop, toy, verify=True)
    print(f"Same loop on the paper's toy machine ({toy}):")
    print(f"Final II = {toy_result.ii} — still matches MII {result.mii}; "
          f"{toy_result.copy_count} copy inserted.")
    for node in toy_result.annotated.ddg.nodes:
        cluster = toy_result.annotated.cluster_of[node.node_id]
        marker = "  [copy]" if node.is_copy else ""
        print(f"  {str(node):<16} -> C{cluster}{marker}")


if __name__ == "__main__":
    main()
