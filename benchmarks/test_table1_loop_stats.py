"""Table 1: statistics of the evaluation loop suite.

Regenerates the paper's loop-population table; the full 1327-loop suite
matches Table 1 within calibration tolerance (see EXPERIMENTS.md).
"""

import pytest

from repro.workloads import paper_suite, suite_statistics

from conftest import print_report


def test_table1_statistics(benchmark):
    def run():
        # Table 1 is a property of the full population, so always use
        # paper scale here regardless of the quick-bench suite size.
        loops = paper_suite(1327)
        return suite_statistics(loops)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report("Table 1 — loop statistics", stats.format_table())

    assert stats.n_loops == 1327
    assert stats.nodes.average == pytest.approx(17.5, rel=0.10)
    assert stats.sccs_per_loop.average == pytest.approx(0.4, rel=0.25)
    assert stats.scc_nodes.average == pytest.approx(9.0, rel=0.25)
    assert stats.edges.average == pytest.approx(22.5, rel=0.10)
