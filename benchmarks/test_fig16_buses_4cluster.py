"""Figure 16: varying the number of buses on the 4-cluster GP machine.

Paper: dropping from 4 to 2 buses hurts >10 % of loops; going from 4 to 8
adds only ~3 %.
"""


from repro.analysis import deviation_table, experiment_summary, run_sweep
from repro.machine import four_cluster_gp

from conftest import print_report

BUS_COUNTS = (2, 4, 8)


def test_fig16_bus_sweep(benchmark, suite, baseline):
    machines = [four_cluster_gp(buses=b) for b in BUS_COUNTS]
    labels = [f"{b} buses" for b in BUS_COUNTS]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 16 — bus sweep, 4 clusters x 4 GP units, 2 ports",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    match = [result.match_percentage for result in results]
    assert match[0] <= match[1] + 1e-9 <= match[2] + 2e-9
    # Two buses hurt noticeably more than eight help (diminishing returns).
    assert (match[1] - match[0]) >= (match[2] - match[1]) - 1.0
