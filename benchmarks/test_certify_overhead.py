"""Certify-gate overhead benchmark: ``--certify`` on a corpus compile.

Runs the bundled corpus experiment on both preset machines with and
without the ``--certify`` gate (certificate emission + independent
verification; the exact oracle is excluded — it is an opt-in analysis,
not part of the gate), takes best-of-N wall times per leg, and asserts
the gate adds less than 10% overhead across the two machines combined.
The certify legs must also come back clean — an overhead number
measured over a corpus the verifier rejects would be meaningless.

Everything is written to ``BENCH_certify.json`` at the repository
root, in the shared :mod:`repro.obs.bench` schema.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_certify_overhead.py -q``
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro import obs
from repro.analysis import run_experiment
from repro.certify import DEFAULT_CERTIFY
from repro.machine import four_cluster_grid, two_cluster_gp
from repro.workloads import bundled_corpus

from conftest import print_report

MAX_OVERHEAD = 0.10
REPEATS = 5
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_certify.json"


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


@pytest.mark.bench
def test_certify_gate_overhead_under_10_percent():
    loops = bundled_corpus()
    machines = [two_cluster_gp(), four_cluster_grid()]

    per_machine = []
    plain_total = 0.0
    certified_total = 0.0
    total_errors = 0
    for machine in machines:
        def plain():
            run_experiment(loops, machine)

        def certified():
            return run_experiment(
                loops, machine, certify_config=DEFAULT_CERTIFY
            )

        # Warm both legs off the clock; the warm certify run doubles
        # as the clean-gate check.
        plain()
        result = certified()
        assert result.total_cert_errors == 0, (
            f"certify gate rejected the bundled corpus on "
            f"{machine.name}: {result.cert_code_counts()}"
        )
        total_errors += result.total_cert_errors
        # Interleave the legs so clock-speed drift hits both equally.
        plain_s = certified_s = None
        for _ in range(REPEATS):
            p = _timed(plain)
            c = _timed(certified)
            plain_s = p if plain_s is None else min(plain_s, p)
            certified_s = (
                c if certified_s is None else min(certified_s, c)
            )
        overhead = (certified_s - plain_s) / plain_s
        per_machine.append(
            {
                "machine": machine.name,
                "plain_s": round(plain_s, 6),
                "certified_s": round(certified_s, 6),
                "overhead": round(overhead, 4),
            }
        )
        plain_total += plain_s
        certified_total += certified_s

    combined = (certified_total - plain_total) / plain_total
    artifact = obs.bench.make_artifact(
        "certify_overhead",
        metrics={
            "plain_total_s": round(plain_total, 6),
            "certified_total_s": round(certified_total, 6),
            "combined_overhead": round(combined, 4),
        },
        budgets={"combined_overhead": MAX_OVERHEAD},
        regression_metrics=["plain_total_s", "certified_total_s"],
        info={
            "loops": len(loops),
            "repeats": REPEATS,
            "machines": per_machine,
            "cert_errors": total_errors,
            "exact_oracle": "excluded",
        },
    )
    obs.bench.write_artifact(artifact, ARTIFACT)

    print_report(
        f"Certify-gate overhead — {len(loops)} corpus loops, "
        f"best of {REPEATS}",
        "\n".join(
            f"{entry['machine']}: plain {entry['plain_s']:.3f}s   "
            f"certified {entry['certified_s']:.3f}s   "
            f"overhead {100 * entry['overhead']:.1f}%"
            for entry in per_machine
        ),
        f"combined: plain {plain_total:.3f}s   "
        f"certified {certified_total:.3f}s   "
        f"overhead {100 * combined:.1f}% "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)",
        f"corpus clean under the gate; wrote {ARTIFACT.name}",
    )
    assert combined < MAX_OVERHEAD, (
        f"--certify adds {100 * combined:.1f}% to the corpus compile "
        f"across {len(machines)} machines, budget is "
        f"{100 * MAX_OVERHEAD:.0f}%"
    )
