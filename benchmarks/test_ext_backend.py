"""Extension: full-backend statistics over the kernel library.

Not a paper artifact — quantifies the backend the paper's context
assumes: code expansion factor of flat pipelined code (equal to the
stage count), MVE unroll factors, per-cluster register pressure, and a
full execution-validation sweep on the simulated clustered hardware.
"""


from repro.analysis.registers import mve_unroll_factor, register_pressure
from repro.codegen import expand_pipeline
from repro.core import compile_loop
from repro.machine import four_cluster_fs
from repro.regalloc import (
    allocate_mve,
    allocate_rotating,
    verify_allocation,
    verify_rotating,
)
from repro.sim import simulate_schedule
from repro.workloads import all_kernels

from conftest import print_report


def test_backend_statistics(benchmark):
    machine = four_cluster_fs()

    def run():
        rows = []
        for loop in all_kernels():
            result = compile_loop(loop, machine)
            code = expand_pipeline(result.schedule)
            allocation = allocate_mve(result.schedule)
            assert verify_allocation(allocation) == []
            rotating = allocate_rotating(result.schedule)
            assert verify_rotating(rotating) == []
            report = simulate_schedule(loop, result.schedule, 5)
            assert report.ok, loop.name
            rows.append((
                loop.name,
                result.ii,
                result.schedule.stage_count,
                code.expansion_factor(len(result.annotated.ddg)),
                mve_unroll_factor(result.schedule),
                register_pressure(result.schedule).total_max_live,
                allocation.total_registers,
                rotating.total_registers,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"{'kernel':<26} {'II':>3} {'stg':>4} {'expand':>7} "
        f"{'MVE':>4} {'MaxLive':>8} {'regs':>5} {'rot':>4}"
    )
    lines = [header, "-" * len(header)]
    for name, ii, stages, expansion, mve, live, regs, rot in rows:
        lines.append(
            f"{name:<26} {ii:>3} {stages:>4} {expansion:>7.1f} "
            f"{mve:>4} {live:>8} {regs:>5} {rot:>4}"
        )
    print_report(
        "Extension — backend statistics (4 clusters x 4 FS units)",
        "\n".join(lines),
    )

    for name, ii, stages, expansion, mve, live, regs, rot in rows:
        assert expansion == stages  # flat-code expansion law
        assert regs >= live  # MaxLive is a lower bound
        assert rot >= live  # ... for rotating files too
