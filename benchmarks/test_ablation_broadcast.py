"""Ablation: broadcast copy sharing on bused machines.

DESIGN.md item 5: with sharing disabled, every consuming cluster gets its
own copy operation (one bus slot + read port each), multiplying copy
resource pressure.  Expected: fewer loops match the unified II and total
copies rise.
"""


from repro.analysis import (
    deviation_table,
    experiment_summary,
    run_variant_comparison,
)
from repro.core import HEURISTIC_ITERATIVE, NO_BROADCAST_SHARING
from repro.machine import four_cluster_gp

from conftest import print_report


def test_ablation_broadcast_sharing(benchmark, suite, baseline):
    machine = four_cluster_gp()

    def run():
        return run_variant_comparison(
            suite, machine, [NO_BROADCAST_SHARING, HEURISTIC_ITERATIVE],
            baseline=baseline,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Ablation — broadcast copy sharing (4 clusters x 4 GP)",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    without, full = results
    assert full.match_percentage >= without.match_percentage - 2.0
