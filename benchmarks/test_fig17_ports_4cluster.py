"""Figure 17: varying read/write ports on the 4-cluster GP machine.

Paper: 1 port hurts ~12 % of loops; 2 ports is the sweet spot; 4 ports
are of marginal value.
"""


from repro.analysis import deviation_table, experiment_summary, run_sweep
from repro.machine import four_cluster_gp

from conftest import print_report

PORT_COUNTS = (1, 2, 4)


def test_fig17_port_sweep(benchmark, suite, baseline):
    machines = [four_cluster_gp(ports=p) for p in PORT_COUNTS]
    labels = [f"{p} port(s)" for p in PORT_COUNTS]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 17 — port sweep, 4 clusters x 4 GP units, 4 buses",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    match = [result.match_percentage for result in results]
    assert match[0] <= match[1] + 1e-9 <= match[2] + 2e-9
    # Going 2 -> 4 ports is marginal compared to 1 -> 2.
    assert (match[1] - match[0]) >= (match[2] - match[1]) - 1.0
