"""Ablation: fresh re-assignment at each larger II (Figure 5 note).

The paper argues a *new* assignment at II+1 beats reusing the old one
because more slack allows fewer copies.  We quantify the first half of
that claim: copy counts of successful assignments shrink as II grows.
"""


from repro.core import assign_clusters
from repro.ddg import mii
from repro.machine import two_cluster_gp

from conftest import print_report


def test_ablation_restart_copy_reduction(benchmark, suite):
    machine = two_cluster_gp()

    def run():
        shrank, grew, total = 0, 0, 0
        for ddg in suite:
            base = mii(ddg, machine.unified_equivalent())
            tight = assign_clusters(ddg, machine, base)
            relaxed = assign_clusters(ddg, machine, base + 2)
            if tight is None or relaxed is None:
                continue
            total += 1
            if relaxed.copy_count < tight.copy_count:
                shrank += 1
            elif relaxed.copy_count > tight.copy_count:
                grew += 1
        return shrank, grew, total

    shrank, grew, total = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Ablation — re-assignment at larger II",
        f"loops where copies shrank at II+2: {shrank}/{total}\n"
        f"loops where copies grew at II+2:   {grew}/{total}",
    )

    # The paper's rationale: a larger II generally needs fewer copies.
    assert shrank >= grew
