"""Extension: interconnect topology comparison at equal cluster budget.

Four clusters of 3 FS units each, three fabrics: broadcast buses, the
paper's 2x2 grid, and a bidirectional ring.  The richer the fabric, the
more loops match the unified II; the grid and ring trail the bus but
stay mostly within one cycle — quantifying what the paper's Section 6
grid result suggests.
"""


from repro.analysis import (
    cumulative_table,
    deviation_table,
    experiment_summary,
    run_sweep,
)
from repro.machine import four_cluster_grid, ring_machine
from repro.machine.machine import Machine
from repro.machine.cluster import ClusterSpec
from repro.machine.interconnect import BusInterconnect
from repro.machine.units import PAPER_GRID_MIX

from conftest import print_report


def _bused_3fs() -> Machine:
    clusters = tuple(
        ClusterSpec(index=i, units=PAPER_GRID_MIX,
                    read_ports=2, write_ports=2)
        for i in range(4)
    )
    return Machine(
        clusters=clusters,
        interconnect=BusInterconnect(bus_count=4),
        name="4cl-3fs-bused",
    )


def test_topology_comparison(benchmark, suite, baseline):
    machines = [
        _bused_3fs(),
        four_cluster_grid(),
        ring_machine(4, PAPER_GRID_MIX),
    ]
    labels = ["4 buses", "2x2 grid", "ring"]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Extension — fabric comparison, 4 clusters x 3 FS units",
        deviation_table(results),
        cumulative_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    bus, grid, ring = results
    assert bus.match_percentage >= grid.match_percentage - 2.0
    # Point-to-point fabrics still keep nearly everything within 1 cycle.
    assert grid.histogram.percentage_at_most(1) >= 90.0
    assert ring.histogram.percentage_at_most(1) >= 85.0
