"""Figure 14: varying the number of buses on the 2-cluster GP machine.

Paper: 1 bus impacts ~4 % of loops; 2 buses suffice; 4 buses add nothing.
"""


from repro.analysis import deviation_table, experiment_summary, run_sweep
from repro.machine import two_cluster_gp

from conftest import print_report

BUS_COUNTS = (1, 2, 4)


def test_fig14_bus_sweep(benchmark, suite, baseline):
    machines = [two_cluster_gp(buses=b) for b in BUS_COUNTS]
    labels = [f"{b} bus(es)" for b in BUS_COUNTS]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 14 — bus sweep, 2 clusters x 4 GP units, 1 port",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    match = [result.match_percentage for result in results]
    # More buses never hurt; 2 buses already close the gap (paper shape).
    assert match[0] <= match[1] + 1e-9
    assert match[1] <= match[2] + 1e-9
    assert match[2] - match[1] <= 3.0  # 4 buses ~ no extra benefit
