"""Figure 12: comparing assignment heuristics on the 2-cluster machine.

Paper setup: 2 clusters x 4 GP units, 2 buses, 1 read/write port.  Four
algorithm variants: Simple, Heuristic, Simple Iterative, Heuristic
Iterative.  Expected shape: the full Heuristic Iterative algorithm
matches the unified II for the most loops; removing iteration costs more
than removing the selection heuristic (paper: 2–11 % and 1–9 % drops).
"""


from repro.analysis import (
    deviation_table,
    experiment_summary,
    match_bar_chart,
    run_variant_comparison,
)
from repro.core import ALL_VARIANTS
from repro.machine import two_cluster_gp

from conftest import print_report


def test_fig12_heuristic_comparison(benchmark, suite, baseline):
    machine = two_cluster_gp()

    def run():
        return run_variant_comparison(
            suite, machine, ALL_VARIANTS, baseline=baseline
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 12 — heuristics, 2 clusters x 4 GP, 2 buses, 1 port",
        deviation_table(results),
        match_bar_chart(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    by_name = {result.config_name: result for result in results}
    full = by_name["Heuristic Iterative"]
    # Shape: the full algorithm leads, and matches the paper's ~99 %
    # ballpark for this machine.
    assert full.match_percentage == max(
        r.match_percentage for r in results
    )
    assert full.match_percentage >= 90.0
    assert by_name["Simple"].match_percentage <= full.match_percentage
