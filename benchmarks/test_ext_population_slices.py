"""Extension: match rates by loop subpopulation.

The paper reports one aggregate number per machine; this extension
splits it: loops carrying multi-node recurrences (the SCC machinery's
raison d'etre — 301/1327 in the paper's suite) versus pure streaming
loops, and by loop-body size.
"""


from repro.analysis import (
    by_recurrence,
    by_size,
    run_experiment,
    slice_result,
)
from repro.machine import four_cluster_gp

from conftest import print_report


def test_population_slices(benchmark, suite, baseline):
    machine = four_cluster_gp()

    def run():
        result = run_experiment(suite, machine, baseline=baseline)
        return (
            slice_result(result, suite, by_recurrence),
            slice_result(result, suite, by_size),
        )

    by_rec, by_sz = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Extension — match rate by subpopulation (4 clusters x 4 GP)",
        by_rec.format_table(),
        by_sz.format_table(),
    )

    # Shape: every slice stays strong; the SCC-first machinery keeps
    # recurrence loops close to (or better than) the streaming ones.
    for label in by_rec.slices:
        assert by_rec.match_percentage(label) >= 60.0
