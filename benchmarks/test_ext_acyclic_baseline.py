"""Extension: modulo scheduling vs unroll + acyclic scheduling.

The paper's Related Work argues that acyclic cluster/scheduling
approaches (BUG [25], Desoli [26]) "do not apply as well" to loops even
when unrolled, because they minimize schedule length rather than
throughput, and that post-scheduling partitioning (Capitanio [3]) breaks
critical recurrences.  This benchmark quantifies the claim on our suite:
the acyclic baseline greedily assigns clusters for earliest completion,
list-schedules the (optionally unrolled) body, then re-issues the fixed
block as tightly as carried dependences and folded resources allow.
"""


from repro.baselines import bug_list_schedule
from repro.core import compile_loop
from repro.machine import two_cluster_gp
from repro.workloads import unroll_ddg

from conftest import print_report

UNROLL_FACTORS = (1, 2, 4)


def test_acyclic_baseline(benchmark, suite, baseline):
    machine = two_cluster_gp()
    sample = suite[: min(len(suite), 120)]

    def run():
        wins = {k: 0 for k in UNROLL_FACTORS}
        ties = {k: 0 for k in UNROLL_FACTORS}
        losses = {k: 0 for k in UNROLL_FACTORS}
        total_ratio = {k: 0.0 for k in UNROLL_FACTORS}
        for ddg in sample:
            modulo_ii = compile_loop(ddg, machine).ii
            for k in UNROLL_FACTORS:
                unrolled = unroll_ddg(ddg, k) if k > 1 else ddg
                acyclic = bug_list_schedule(
                    unrolled, machine, unroll_factor=k
                )
                ratio = acyclic.effective_ii / modulo_ii
                total_ratio[k] += ratio
                if modulo_ii < acyclic.effective_ii - 1e-9:
                    wins[k] += 1
                elif modulo_ii <= acyclic.effective_ii + 1e-9:
                    ties[k] += 1
                else:
                    losses[k] += 1
        return wins, ties, losses, total_ratio, len(sample)

    wins, ties, losses, total_ratio, n = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        f"{'unroll':>6} {'modulo wins':>12} {'ties':>6} {'losses':>7} "
        f"{'mean acyclic/modulo II':>23}"
    ]
    for k in UNROLL_FACTORS:
        lines.append(
            f"{k:>6} {wins[k]:>12} {ties[k]:>6} {losses[k]:>7} "
            f"{total_ratio[k] / n:>22.2f}x"
        )
    print_report(
        "Extension — modulo scheduling vs unroll + acyclic baseline "
        "(2 clusters x 4 GP)",
        "\n".join(lines),
    )

    # The paper's claim: modulo scheduling dominates at every unroll
    # level, and unrolling narrows but does not close the gap.  Deep
    # unrolling wins isolated loops with *fractional* recurrence ratios
    # (e.g. RecMII 5/4: the unrolled block sustains 1.25 cycles/iter
    # where a single-iteration modulo kernel must round up to 2) — an
    # effect orthogonal to clustering that modulo scheduling recovers by
    # unrolling too; we don't, so allow a bounded loss count there.
    for k in UNROLL_FACTORS:
        assert losses[k] <= max(4, n * 0.15)
        assert total_ratio[k] / n >= 1.0
