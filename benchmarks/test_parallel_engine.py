"""Parallel experiment-engine benchmark.

Runs the bench suite (>= 100 loops) serially through the reference
runner and through the 4-worker engine, asserts the two outcome lists
are bit-identical, verifies fault tolerance on an injected
unschedulable loop, and writes serial-vs-parallel wall times plus the
speedup to ``BENCH_parallel_engine.json`` at the repository root, in
the shared :mod:`repro.obs.bench` schema.

The >= 2x speedup assertion is enforced only when the host exposes at
least 4 usable cores: a process pool cannot beat the serial path on a
single-core container, and the artifact records the core count so the
recorded speedup is interpretable either way.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_parallel_engine.py -q``
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro import obs
from repro.analysis import (
    EngineOptions,
    run_engine_experiment,
    run_experiment,
)
from repro.ddg import Opcode, build_ddg
from repro.machine import two_cluster_gp
from repro.workloads import paper_suite

from conftest import bench_suite_size, print_report

WORKERS = 4
MIN_SPEEDUP = 2.0
ARTIFACT = (Path(__file__).resolve().parent.parent
            / "BENCH_parallel_engine.json")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def test_parallel_engine_speedup_and_equality():
    n_loops = max(100, bench_suite_size())
    loops = paper_suite(n_loops)
    machine = two_cluster_gp()
    cores = _usable_cores()

    started = time.perf_counter()
    serial = run_experiment(loops, machine)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_engine_experiment(
        loops, machine, options=EngineOptions(workers=WORKERS)
    )
    parallel_s = time.perf_counter() - started

    assert parallel.outcomes == serial.outcomes, (
        "engine outcomes diverged from the serial reference"
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0

    # Fault tolerance: one injected unschedulable loop must be recorded
    # as failed while the rest of the suite completes.
    bad = build_ddg(
        ops=[("a", Opcode.ALU), ("b", Opcode.ALU)],
        deps=[("a", "b", 0), ("b", "a", 0)],
        name="injected_unschedulable",
    )
    injected = list(loops[:50]) + [bad] + list(loops[50:100])
    tolerant = run_engine_experiment(
        injected, machine, options=EngineOptions(workers=WORKERS)
    )
    assert tolerant.n_loops == len(injected)
    assert [o.loop_name for o in tolerant.failures] == [
        "injected_unschedulable"
    ]

    enforce_speedup = cores >= WORKERS
    artifact = obs.bench.make_artifact(
        "parallel_engine",
        metrics={
            "serial_s": round(serial_s, 6),
            "parallel_s": round(parallel_s, 6),
            "speedup": round(speedup, 4),
        },
        regression_metrics=["serial_s"],
        info={
            "loops": n_loops,
            "machine": machine.name,
            "workers": WORKERS,
            "usable_cores": cores,
            "min_speedup": MIN_SPEEDUP,
            "speedup_enforced": enforce_speedup,
            "outcomes_identical": True,
            "injected_failure_isolated": True,
            "n_failed_serial": serial.n_failed,
        },
    )
    obs.bench.write_artifact(artifact, ARTIFACT)

    print_report(
        f"Parallel engine — {n_loops} loops, serial vs "
        f"{WORKERS} workers ({cores} cores)",
        f"serial: {serial_s:.2f}s   parallel: {parallel_s:.2f}s   "
        f"speedup: {speedup:.2f}x",
        f"outcomes identical; injected failure isolated",
        f"wrote {ARTIFACT.name}",
    )
    if enforce_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"{WORKERS}-worker speedup {speedup:.2f}x below "
            f"{MIN_SPEEDUP:.1f}x on a {cores}-core host"
        )
