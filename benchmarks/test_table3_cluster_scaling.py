"""Table 3: bus/port sweet spots for 2/4/6/8-cluster GP machines.

Paper: (2 cl, 2 buses, 1 port) -> 99.7 %; (4, 4, 2) -> 97.5 %;
(6, 6, 3) -> 96.5 %; (8, 7, 3) -> 99.5 % of loops match the unified II —
roughly linear bus/port needs in the cluster count.
"""


from repro.analysis import run_experiment, table3_rows
from repro.machine import TABLE3_CONFIGS, n_cluster_gp

from conftest import print_report


def test_table3_scaling(benchmark, suite, baseline):
    def run():
        entries = []
        for clusters, buses, ports in TABLE3_CONFIGS:
            machine = n_cluster_gp(clusters, buses, ports)
            result = run_experiment(
                suite, machine,
                label=f"{clusters}cl", baseline=baseline,
            )
            entries.append(
                (clusters, buses, ports, result.match_percentage)
            )
        return entries

    entries = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report("Table 3 — bus/port resource comparisons",
                 table3_rows(entries))

    # Shape: every sweet-spot configuration hides communication for the
    # overwhelming majority of loops (paper: 96.5-99.7 %).
    for clusters, buses, ports, pct in entries:
        assert pct >= 85.0, (clusters, buses, ports, pct)
