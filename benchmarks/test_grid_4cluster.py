"""Section 6 grid result: the 2x2 point-to-point machine.

Paper: 92 % of loops match the unified machine's II; 98 % deviate by at
most one cycle — despite no broadcast, one fewer unit per cluster, and
two-hop diagonals.
"""


from repro.analysis import (
    cumulative_table,
    deviation_table,
    experiment_summary,
    run_experiment,
)
from repro.machine import four_cluster_grid

from conftest import print_report


def test_grid_machine(benchmark, suite, baseline):
    machine = four_cluster_grid()

    def run():
        return run_experiment(
            suite, machine, label="4-cluster grid", baseline=baseline
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Grid — 4 clusters x 3 FS units, point-to-point square",
        deviation_table([result]),
        cumulative_table([result]),
        experiment_summary(result),
    )

    # Paper shape: ~92 % match, ~98 % within one cycle.  Our synthetic
    # population is more resource-tight than the original Fortran loops
    # (more loops whose unified II exactly saturates a unit class, which
    # no split over 3-unit clusters can match), so the exact-match rate
    # lands lower (~74 % at full scale) while the within-one-cycle rate
    # reproduces the paper's 98 %.  See EXPERIMENTS.md for the analysis.
    assert result.match_percentage >= 65.0
    assert result.histogram.percentage_at_most(1) >= 90.0
