"""Figure 13: comparing assignment heuristics on the 4-cluster machine.

Paper setup: 4 clusters x 4 GP units, 4 buses, 2 read/write ports.  Same
four variants as Figure 12; the gap between the full algorithm and the
ablated ones widens with more clusters.
"""


from repro.analysis import (
    deviation_table,
    experiment_summary,
    match_bar_chart,
    run_variant_comparison,
)
from repro.core import ALL_VARIANTS
from repro.machine import four_cluster_gp

from conftest import print_report


def test_fig13_heuristic_comparison(benchmark, suite, baseline):
    machine = four_cluster_gp()

    def run():
        return run_variant_comparison(
            suite, machine, ALL_VARIANTS, baseline=baseline
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 13 — heuristics, 4 clusters x 4 GP, 4 buses, 2 ports",
        deviation_table(results),
        match_bar_chart(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    by_name = {result.config_name: result for result in results}
    full = by_name["Heuristic Iterative"]
    assert full.match_percentage == max(
        r.match_percentage for r in results
    )
    assert full.match_percentage >= 85.0
    # Removing iteration hurts (the paper's 2-11% drop).
    assert (by_name["Heuristic"].match_percentage
            <= full.match_percentage)
