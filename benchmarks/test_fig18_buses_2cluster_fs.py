"""Figure 18: bus sweep on the 2-cluster fully-specified machine.

Paper: with 2 buses, ~95 % of loops match the unified machine's II; FS
results closely track the GP results.
"""


from repro.analysis import deviation_table, experiment_summary, run_sweep
from repro.machine import two_cluster_fs

from conftest import print_report

BUS_COUNTS = (1, 2, 4)


def test_fig18_bus_sweep_fs(benchmark, suite, baseline):
    machines = [two_cluster_fs(buses=b) for b in BUS_COUNTS]
    labels = [f"{b} bus(es)" for b in BUS_COUNTS]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 18 — bus sweep, 2 clusters x 4 FS units, 1 port",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    match = [result.match_percentage for result in results]
    assert match[0] <= match[1] + 1e-9 <= match[2] + 2e-9
    assert match[1] >= 85.0  # paper ballpark: ~95 %
