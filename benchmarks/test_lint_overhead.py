"""Lint-gate overhead benchmark: ``--lint`` on an untraced corpus compile.

Runs the bundled corpus experiment on both preset machines (the same two
configurations the CI lint job covers) with and without the ``--lint``
gate, takes best-of-N wall times per leg, and asserts the gate adds less
than 10% overhead across the two machines combined.  A third leg runs
the gate scoped to the DF7xx dataflow family alone, so the fixed-point
analyses' cost is tracked separately under the same budget.  The lint
legs must also come back clean — an overhead number measured over a
corpus the gate rejects would be meaningless.

The interprocedural CONC9xx pass does not ride the per-loop gate — it
analyzes the *source tree* once per run — so it gets its own leg: the
project call-graph build + fixed-point solve over ``src/``, timed cold
(no cache) and warm (second run against the incremental analysis
cache), both recorded alongside the gate numbers.

Everything is written to ``BENCH_lint.json`` at the repository root,
in the shared :mod:`repro.obs.bench` schema.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_lint_overhead.py -q``
"""

from __future__ import annotations

import gc
import time
from pathlib import Path

import pytest

from repro import obs
from repro.analysis import run_experiment
from repro.lint import DEFAULT_CONFIG, LintConfig
from repro.machine import four_cluster_grid, two_cluster_gp
from repro.workloads import bundled_corpus

from conftest import print_report

MAX_OVERHEAD = 0.10
REPEATS = 7
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_lint.json"

#: The dataflow-family-only gate (the tentpole's fixed-point analyses)
#: as the default ``--lint`` gate runs it: DF705 re-derives MII from
#: scratch and is opt-in like SCHED490/CERT6xx, so it sits outside the
#: overhead budget (``select`` implies enablement; ``disable`` wins).
DF_CONFIG = LintConfig(
    select=frozenset({"DF7"}), disable=frozenset({"DF705"})
)


def _timed(fn) -> float:
    # Collect (then pause) the garbage collector so allocation-heavy
    # legs don't pay for cycles the previous leg created: a gen-2 pass
    # landing mid-leg is several percent of noise on a sub-second run.
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started
    finally:
        gc.enable()


def _time_callgraph_legs(tmp_dir: Path):
    """Best-of-3 cold and warm timings of the CONC9xx project pass."""
    from repro.lint import AnalysisCache, build_project, collect_source_files

    src_root = str(Path(__file__).resolve().parent.parent / "src")
    sources = collect_source_files([src_root])
    cache_dir = str(tmp_dir)

    cold_s = warm_s = None
    for _ in range(3):
        cold_s_run = _timed(lambda: build_project(sources))
        cold_s = cold_s_run if cold_s is None else min(cold_s, cold_s_run)
    # Populate the cache once off the clock, then time warm hits.
    project = build_project(sources, cache=AnalysisCache(cache_dir))
    for _ in range(3):
        warm_s_run = _timed(
            lambda: build_project(sources, cache=AnalysisCache(cache_dir))
        )
        warm_s = warm_s_run if warm_s is None else min(warm_s, warm_s_run)
    warm = build_project(sources, cache=AnalysisCache(cache_dir))
    assert warm.stats.files_parsed == 0 and warm.stats.sccs_solved == 0, (
        "warm incremental run re-did work: "
        f"{warm.stats!r} (cold solved {project.stats.sccs_solved} SCCs)"
    )
    return len(sources), cold_s, warm_s


@pytest.mark.bench
def test_lint_gate_overhead_under_10_percent(tmp_path):
    loops = bundled_corpus()
    machines = [two_cluster_gp(), four_cluster_grid()]

    per_machine = []
    plain_total = 0.0
    linted_total = 0.0
    dataflow_total = 0.0
    total_diagnostics = {"errors": 0, "warnings": 0}
    for machine in machines:
        def plain():
            run_experiment(loops, machine)

        def linted():
            return run_experiment(
                loops, machine, lint_config=DEFAULT_CONFIG
            )

        def dataflow():
            return run_experiment(
                loops, machine, lint_config=DF_CONFIG
            )

        # Warm all legs off the clock (imports, memoized rule tables);
        # the warm lint runs double as the clean-gate checks.
        plain()
        result = linted()
        assert result.total_lint_errors == 0, (
            f"lint gate rejected the bundled corpus on {machine.name}: "
            f"{result.lint_code_counts()}"
        )
        df_result = dataflow()
        assert df_result.total_lint_errors == 0, (
            f"DF gate rejected the bundled corpus on {machine.name}: "
            f"{df_result.lint_code_counts()}"
        )
        total_diagnostics["errors"] += result.total_lint_errors
        total_diagnostics["warnings"] += result.total_lint_warnings
        # Interleave the legs so clock-speed drift hits all equally;
        # the best-of floor of each leg is the comparable number.
        plain_s = linted_s = dataflow_s = None
        for _ in range(REPEATS):
            p = _timed(plain)
            l = _timed(linted)
            d = _timed(dataflow)
            plain_s = p if plain_s is None else min(plain_s, p)
            linted_s = l if linted_s is None else min(linted_s, l)
            dataflow_s = d if dataflow_s is None else min(dataflow_s, d)
        overhead = (linted_s - plain_s) / plain_s
        df_overhead = (dataflow_s - plain_s) / plain_s
        per_machine.append(
            {
                "machine": machine.name,
                "plain_s": round(plain_s, 6),
                "linted_s": round(linted_s, 6),
                "dataflow_s": round(dataflow_s, 6),
                "overhead": round(overhead, 4),
                "dataflow_overhead": round(df_overhead, 4),
            }
        )
        plain_total += plain_s
        linted_total += linted_s
        dataflow_total += dataflow_s

    combined = (linted_total - plain_total) / plain_total
    dataflow_combined = (dataflow_total - plain_total) / plain_total
    n_sources, callgraph_cold_s, callgraph_warm_s = _time_callgraph_legs(
        tmp_path
    )
    artifact = obs.bench.make_artifact(
        "lint_overhead",
        metrics={
            "plain_total_s": round(plain_total, 6),
            "linted_total_s": round(linted_total, 6),
            "dataflow_total_s": round(dataflow_total, 6),
            "combined_overhead": round(combined, 4),
            "dataflow_overhead": round(dataflow_combined, 4),
            "callgraph_cold_s": round(callgraph_cold_s, 6),
            "callgraph_warm_s": round(callgraph_warm_s, 6),
        },
        budgets={
            "combined_overhead": MAX_OVERHEAD,
            "dataflow_overhead": MAX_OVERHEAD,
        },
        regression_metrics=[
            "plain_total_s", "linted_total_s", "dataflow_total_s",
            "callgraph_cold_s", "callgraph_warm_s",
        ],
        info={
            "loops": len(loops),
            "repeats": REPEATS,
            "machines": per_machine,
            "lint_errors": total_diagnostics["errors"],
            "lint_warnings": total_diagnostics["warnings"],
            "callgraph_sources": n_sources,
        },
    )
    obs.bench.write_artifact(artifact, ARTIFACT)

    print_report(
        f"Lint-gate overhead — {len(loops)} corpus loops, "
        f"best of {REPEATS}",
        "\n".join(
            f"{entry['machine']}: plain {entry['plain_s']:.3f}s   "
            f"linted {entry['linted_s']:.3f}s   "
            f"dataflow {entry['dataflow_s']:.3f}s   "
            f"overhead {100 * entry['overhead']:.1f}%"
            for entry in per_machine
        ),
        f"combined: plain {plain_total:.3f}s   "
        f"linted {linted_total:.3f}s   "
        f"overhead {100 * combined:.1f}% "
        f"(dataflow leg {100 * dataflow_combined:.1f}%, "
        f"budget {100 * MAX_OVERHEAD:.0f}%)",
        f"call graph over {n_sources} files: "
        f"cold {callgraph_cold_s:.3f}s   warm {callgraph_warm_s:.3f}s",
        f"corpus clean under the gate; wrote {ARTIFACT.name}",
    )
    assert dataflow_combined < MAX_OVERHEAD, (
        f"the DF7xx pass alone adds {100 * dataflow_combined:.1f}% "
        f"to the corpus compile, budget is {100 * MAX_OVERHEAD:.0f}%"
    )
    assert combined < MAX_OVERHEAD, (
        f"--lint adds {100 * combined:.1f}% to the corpus compile "
        f"across {len(machines)} machines, budget is "
        f"{100 * MAX_OVERHEAD:.0f}%"
    )
