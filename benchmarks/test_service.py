"""Compile-service benchmark: warm pool + front door vs serial.

The ISSUE-7 acceptance benchmark.  Drives the bench suite through the
compile service three ways —

* **serial reference** — direct ``compile_loop`` calls, the floor the
  service must not lose to;
* **warm 1-worker service, no cache** — every request really compiles,
  so the measured gap over serial is pure serving overhead (IPC +
  batching + admission).  The old cold ``ProcessPoolExecutor`` path
  lost this comparison at 0.78x; the warm pool must stay within 0.95x
  of serial;
* **cached replay** — the same workload replayed over the sharded
  result cache: hit rate and the p50/p99 reply latencies of a
  fully-warm service.

Replies are asserted bit-identical (ii/mii/copies) to the direct
serial compiles, and everything lands in ``BENCH_service.json`` via
the shared :mod:`repro.obs.bench` envelope.  The serial and service
legs run as interleaved pass pairs and the gate uses the best paired
ratio, so host load lands on both sides of a ratio instead of
masquerading as serving overhead.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_service.py -q``
"""

from __future__ import annotations

import asyncio
import os
import time
from pathlib import Path

from repro import obs
from repro.core.driver import CompilationError, compile_loop
from repro.machine import two_cluster_gp
from repro.service import (
    CompileRequest,
    CompileService,
    ServiceConfig,
    WorkerPool,
    replay,
)
from repro.workloads import paper_suite

from conftest import bench_suite_size, print_report

#: The service must stay within this fraction of serial at 1 worker.
MIN_SPEEDUP_1W = 0.95
ARTIFACT = (Path(__file__).resolve().parent.parent
            / "BENCH_service.json")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


#: Timed legs are repeated and the fastest pass is kept: the suite
#: compiles in well under a second, so a single pass on a busy CI host
#: measures scheduler jitter, not serving overhead.
PASSES = 3


def _run_leg(pool, config, requests):
    """Replay ``requests`` through one fresh service; (replies, stats,
    wall seconds)."""

    async def main():
        async with CompileService(config, pool=pool) as service:
            started = time.perf_counter()
            replies = await replay(service, requests)
            elapsed = time.perf_counter() - started
            return replies, service.stats, elapsed

    return asyncio.run(main())


def _best_leg(pool, config, requests, passes=PASSES):
    """Fastest of ``passes`` runs of :func:`_run_leg`."""
    best = None
    for _ in range(passes):
        run = _run_leg(pool, config, requests)
        if best is None or run[2] < best[2]:
            best = run
    return best


def test_compile_service_vs_serial(tmp_path):
    n_loops = max(100, bench_suite_size())
    loops = paper_suite(n_loops)
    machine = two_cluster_gp()
    cores = _usable_cores()
    requests = [CompileRequest(loop=ddg) for ddg in loops]

    # -- warm pool startup (measured, excluded from the legs) ----------
    started = time.perf_counter()
    pool = WorkerPool(workers=1)
    pool.warm_up()
    warm_start_s = time.perf_counter() - started

    # -- serial reference vs warm 1-worker service, no cache -----------
    # The two timed legs alternate, one pair per pass, and the gating
    # ratio is the best *paired* slowdown: pairing puts a load spike on
    # a shared host onto both sides of the same ratio instead of
    # silently skewing whichever leg it hit (the classic paired-
    # measurement design).  Serial passes compile freshly built graphs
    # — reusing one suite would let later passes ride the loops' cached
    # DdgViews, an advantage the service's workers (which receive newly
    # deserialized graphs) never get.
    direct = {}
    serial_s = float("inf")
    nocache_slowdown = float("inf")
    best_service = None
    nocache_config = ServiceConfig(workers=1, batch_size=64)
    for _ in range(PASSES):
        fresh = paper_suite(n_loops)
        started = time.perf_counter()
        for ddg in fresh:
            try:
                compiled = compile_loop(ddg, machine)
            except (CompilationError, ValueError):
                direct[ddg.name] = None
            else:
                direct[ddg.name] = (
                    compiled.ii, compiled.mii, compiled.copy_count
                )
        serial_pass_s = time.perf_counter() - started
        serial_s = min(serial_s, serial_pass_s)
        run = _run_leg(pool, nocache_config, requests)
        if best_service is None or run[2] < best_service[2]:
            best_service = run
        nocache_slowdown = min(
            nocache_slowdown, run[2] / serial_pass_s
        )
    replies, nocache_stats, service_nocache_s = best_service
    for reply in replies:
        expected = direct[reply.loop]
        if expected is None:
            assert reply.status == "failed", reply
        else:
            assert reply.status == "ok", reply
            assert (reply.ii, reply.mii, reply.copies) == expected, (
                f"{reply.loop}: service diverged from serial"
            )
    speedup_1w = 1.0 / nocache_slowdown
    p50_ms = nocache_stats.latency_percentile(50) * 1e3
    p99_ms = nocache_stats.latency_percentile(99) * 1e3

    # -- leg 2: cached replay ------------------------------------------
    cache_dir = str(tmp_path / "service-cache")
    cache_config = ServiceConfig(workers=1, cache_dir=cache_dir)
    _run_leg(pool, cache_config, requests)  # populate
    cached_replies, cached_stats, cached_s = _best_leg(
        pool, cache_config, requests, passes=2,
    )
    pool.close()
    assert all(reply.cached for reply in cached_replies), (
        "second replay over the same cache dir must be all hits"
    )
    cache_hit_rate = cached_stats.cache_hit_rate
    cache_miss_rate = 1.0 - cache_hit_rate
    cached_p50_ms = cached_stats.latency_percentile(50) * 1e3
    cached_p99_ms = cached_stats.latency_percentile(99) * 1e3

    artifact = obs.bench.make_artifact(
        "service",
        metrics={
            "serial_s": round(serial_s, 6),
            "service_nocache_s": round(service_nocache_s, 6),
            "nocache_slowdown": round(nocache_slowdown, 4),
            "speedup_1w": round(speedup_1w, 4),
            "warm_start_s": round(warm_start_s, 6),
            "cached_s": round(cached_s, 6),
            "cache_miss_rate": round(cache_miss_rate, 4),
            "p50_ms": round(p50_ms, 3),
            "p99_ms": round(p99_ms, 3),
            "cached_p50_ms": round(cached_p50_ms, 3),
            "cached_p99_ms": round(cached_p99_ms, 3),
        },
        budgets={
            # ISSUE 7's acceptance: >= 0.95x serial at 1 warm worker,
            # i.e. at most 1/0.95 ~ 1.0526x serial wall time.
            "nocache_slowdown": round(1.0 / MIN_SPEEDUP_1W, 4),
            # The cached replay must be all hits.
            "cache_miss_rate": 0.01,
        },
        regression_metrics=["service_nocache_s", "cached_s"],
        info={
            "loops": n_loops,
            "machine": machine.name,
            "usable_cores": cores,
            "min_speedup_1w": MIN_SPEEDUP_1W,
            "batches": nocache_stats.batches,
            "replies_identical_to_serial": True,
            "cache_hit_rate": round(cache_hit_rate, 4),
        },
    )
    obs.bench.write_artifact(artifact, ARTIFACT)

    print_report(
        f"Compile service — {n_loops} loops, 1 warm worker "
        f"({cores} cores)",
        f"serial: {serial_s:.2f}s   service (no cache): "
        f"{service_nocache_s:.2f}s   speedup: {speedup_1w:.2f}x",
        f"cached replay: {cached_s:.2f}s   hit rate: "
        f"{cache_hit_rate:.0%}   p50/p99: {p50_ms:.1f}/{p99_ms:.1f} ms "
        f"(cached: {cached_p50_ms:.2f}/{cached_p99_ms:.2f} ms)",
        f"wrote {ARTIFACT.name}",
    )
    assert speedup_1w >= MIN_SPEEDUP_1W, (
        f"warm 1-worker service ran at {speedup_1w:.2f}x serial, "
        f"below the {MIN_SPEEDUP_1W:.2f}x floor — the serving layer "
        f"is paying too much overhead per request"
    )
