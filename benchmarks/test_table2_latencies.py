"""Table 2: operation latencies used by every machine model."""


from repro.ddg import Opcode, all_opcode_info

from conftest import print_report

PAPER_TABLE2 = {
    Opcode.ALU: 1, Opcode.SHIFT: 1, Opcode.BRANCH: 1, Opcode.STORE: 1,
    Opcode.FP_ADD: 1, Opcode.COPY: 1, Opcode.LOAD: 2, Opcode.FP_MULT: 3,
    Opcode.FP_DIV: 9, Opcode.FP_SQRT: 9,
}


def test_table2_latencies(benchmark):
    def run():
        return {info.opcode: info.latency for info in all_opcode_info()}

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = ["Operation                                Latency",
            "-" * 48]
    for opcode in Opcode:
        rows.append(f"{opcode.value:<40} {latencies[opcode]} cycle(s)")
    print_report("Table 2 — operation latencies", "\n".join(rows))

    assert latencies == PAPER_TABLE2
