"""Figure 15: varying read/write ports on the 2-cluster GP machine.

Paper: one port per cluster suffices; a second port improves only 0.1 %
of loops.
"""


from repro.analysis import deviation_table, experiment_summary, run_sweep
from repro.machine import two_cluster_gp

from conftest import print_report

PORT_COUNTS = (1, 2)


def test_fig15_port_sweep(benchmark, suite, baseline):
    machines = [two_cluster_gp(ports=p) for p in PORT_COUNTS]
    labels = [f"{p} port(s)" for p in PORT_COUNTS]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 15 — port sweep, 2 clusters x 4 GP units, 2 buses",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    one_port, two_ports = results
    assert one_port.match_percentage <= two_ports.match_percentage + 1e-9
    # The second port is marginal (paper: 0.1 %).
    assert (two_ports.match_percentage
            - one_port.match_percentage) <= 3.0
