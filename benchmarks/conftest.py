"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures over the
evaluation suite.  The suite size defaults to a quick-but-meaningful 250
loops; set ``REPRO_SUITE_SIZE=1327`` to run the paper-scale population
(the numbers recorded in EXPERIMENTS.md were produced at full scale).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import UnifiedBaseline
from repro.workloads import paper_suite

DEFAULT_BENCH_SUITE_SIZE = 250


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def bench_suite_size() -> int:
    """Suite size for benchmark runs (env-overridable)."""
    return int(os.environ.get("REPRO_SUITE_SIZE", DEFAULT_BENCH_SUITE_SIZE))


@pytest.fixture(scope="session")
def suite():
    """The evaluation loop suite shared by every benchmark."""
    return paper_suite(bench_suite_size())


@pytest.fixture(scope="session")
def baseline():
    """Unified-machine II cache shared across all benchmarks: sweeps
    that share a machine width reuse each loop's baseline II."""
    return UnifiedBaseline()


def print_report(title: str, *blocks: str) -> None:
    """Emit one benchmark's figure/table reproduction to stdout."""
    width = max(len(title), 60)
    print()
    print("=" * width)
    print(title)
    print("=" * width)
    for block in blocks:
        print(block)
        print()
