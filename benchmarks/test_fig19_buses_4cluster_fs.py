"""Figure 19: bus sweep on the 4-cluster fully-specified machine.

Paper: with 4 buses and 2 ports, ~94 % of loops match the unified II.
"""


from repro.analysis import deviation_table, experiment_summary, run_sweep
from repro.machine import four_cluster_fs

from conftest import print_report

BUS_COUNTS = (2, 4, 8)


def test_fig19_bus_sweep_fs(benchmark, suite, baseline):
    machines = [four_cluster_fs(buses=b) for b in BUS_COUNTS]
    labels = [f"{b} buses" for b in BUS_COUNTS]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Figure 19 — bus sweep, 4 clusters x 4 FS units, 2 ports",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    match = [result.match_percentage for result in results]
    assert match[0] <= match[1] + 1e-9 <= match[2] + 2e-9
    assert match[1] >= 80.0  # paper ballpark: ~94 %
