"""Ablation: copy prediction (PCR/MRC shading) inside the full algorithm.

DESIGN.md item 3: disabling the line-6 selection (predicted copy requests
vs. reservable room) while keeping SCC affinity, copy minimization, free
space, and iteration.  Expected: prediction helps most where ports are
scarce (the paper's Observation One scenario).
"""


from repro.analysis import (
    deviation_table,
    experiment_summary,
    run_variant_comparison,
)
from repro.core import HEURISTIC_ITERATIVE, NO_PREDICTION
from repro.machine import four_cluster_gp

from conftest import print_report


def test_ablation_copy_prediction(benchmark, suite, baseline):
    machine = four_cluster_gp(ports=1)  # scarce ports stress prediction

    def run():
        return run_variant_comparison(
            suite, machine, [NO_PREDICTION, HEURISTIC_ITERATIVE],
            baseline=baseline,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Ablation — PCR/MRC copy prediction (4 clusters, 1 port)",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    without, full = results
    assert full.match_percentage >= without.match_percentage - 2.0
