"""Tracing-overhead smoke benchmark.

Compiles a 20-loop slice of the evaluation suite with tracing disabled
and enabled, asserts the traced run stays within 10% of the untraced
one (the disabled fast path must stay ~free, and even *enabled* tracing
must remain cheap relative to compilation), and writes the comparison
plus the traced run's full metrics dict to ``BENCH_trace_smoke.json``
at the repository root — the machine-readable perf artifact of the
observability layer.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_trace_smoke.py -q``
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs
from repro.analysis import UnifiedBaseline, run_experiment
from repro.machine import two_cluster_gp
from repro.workloads import paper_suite

from conftest import print_report

SMOKE_LOOPS = 20
ROUNDS = 3
MAX_OVERHEAD = 0.10
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_trace_smoke.json"


def _best_of(rounds: int, run) -> float:
    """Min wall time over ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_tracing_overhead_smoke():
    loops = paper_suite(SMOKE_LOOPS)
    machine = two_cluster_gp()

    def run_untraced():
        # A fresh baseline each round: identical work in both modes.
        run_experiment(loops, machine, baseline=UnifiedBaseline())

    trace = obs.Trace()

    def run_traced():
        with obs.tracing(trace):
            run_experiment(loops, machine, baseline=UnifiedBaseline())

    run_untraced()  # warm caches before timing either mode
    untraced = _best_of(ROUNDS, run_untraced)
    traced = _best_of(ROUNDS, run_traced)
    overhead = traced / untraced - 1.0

    metrics = obs.metrics_dict(trace)
    artifact = {
        "benchmark": "trace_smoke",
        "loops": SMOKE_LOOPS,
        "machine": machine.name,
        "rounds": ROUNDS,
        "untraced_s": round(untraced, 6),
        "traced_s": round(traced, 6),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD,
        "counters": metrics["counters"],
        "phases": metrics["phases"],
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    print_report(
        "Trace smoke — 20-loop slice, tracing off vs. on",
        f"untraced: {untraced * 1e3:.1f}ms   traced: {traced * 1e3:.1f}ms"
        f"   overhead: {overhead * 100:+.1f}%",
        f"wrote {ARTIFACT.name}",
    )
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% "
        f"(untraced {untraced:.4f}s, traced {traced:.4f}s)"
    )
