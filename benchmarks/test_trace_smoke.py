"""Tracing-overhead smoke benchmark.

Compiles a 20-loop slice of the evaluation suite with tracing disabled,
enabled, and enabled-with-profiling, asserts the traced run stays
within 10% of the untraced one (the disabled fast path must stay ~free,
and even *enabled* tracing must remain cheap relative to compilation),
and writes the comparison plus the traced run's full metrics dict to
``BENCH_trace_smoke.json`` at the repository root — the
machine-readable perf artifact of the observability layer, in the
shared :mod:`repro.obs.bench` schema.

The profiled leg (``sys.setprofile`` CPU attribution) is recorded with
a 2x-of-untraced budget but not asserted: deterministic profiling is an
opt-in diagnosis mode, and its cost is tracked by ``repro bench check``
rather than gated here.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_trace_smoke.py -q``
"""

from __future__ import annotations

import time
from pathlib import Path

from repro import obs
from repro.analysis import UnifiedBaseline, run_experiment
from repro.machine import two_cluster_gp
from repro.workloads import paper_suite

from conftest import print_report

SMOKE_LOOPS = 20
ROUNDS = 3
MAX_OVERHEAD = 0.10
PROFILED_BUDGET_X = 2.0  # recorded, not asserted
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_trace_smoke.json"


def _best_of(rounds: int, run) -> float:
    """Min wall time over ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_tracing_overhead_smoke():
    loops = paper_suite(SMOKE_LOOPS)
    machine = two_cluster_gp()

    def run_untraced():
        # A fresh baseline each round: identical work in both modes.
        run_experiment(loops, machine, baseline=UnifiedBaseline())

    trace = obs.Trace()

    def run_traced():
        with obs.tracing(trace):
            run_experiment(loops, machine, baseline=UnifiedBaseline())

    def run_profiled():
        profiled_trace = obs.Trace()
        with obs.tracing(profiled_trace):
            with obs.prof.profiling(profiled_trace):
                run_experiment(
                    loops, machine, baseline=UnifiedBaseline()
                )

    run_untraced()  # warm caches before timing any mode
    untraced = _best_of(ROUNDS, run_untraced)
    traced = _best_of(ROUNDS, run_traced)
    profiled = _best_of(ROUNDS, run_profiled)
    overhead = traced / untraced - 1.0
    profiled_overhead = profiled / untraced - 1.0

    metrics = obs.metrics_dict(trace)
    artifact = obs.bench.make_artifact(
        "trace_smoke",
        metrics={
            "untraced_s": round(untraced, 6),
            "traced_s": round(traced, 6),
            "overhead_fraction": round(overhead, 4),
            "profiled_s": round(profiled, 6),
            "profiled_overhead": round(profiled_overhead, 4),
        },
        budgets={"overhead_fraction": MAX_OVERHEAD},
        regression_metrics=["untraced_s", "traced_s"],
        info={
            "loops": SMOKE_LOOPS,
            "machine": machine.name,
            "rounds": ROUNDS,
            "profiled_budget_x": PROFILED_BUDGET_X,
            "profiled_gated": False,
            "counters": metrics["counters"],
            "phases": metrics["phases"],
        },
    )
    obs.bench.write_artifact(artifact, ARTIFACT)

    print_report(
        "Trace smoke — 20-loop slice, tracing off vs. on vs. profiled",
        f"untraced: {untraced * 1e3:.1f}ms   traced: {traced * 1e3:.1f}ms"
        f"   overhead: {overhead * 100:+.1f}%",
        f"profiled: {profiled * 1e3:.1f}ms   "
        f"overhead: {profiled_overhead * 100:+.1f}% "
        f"(budget {PROFILED_BUDGET_X:.0f}x untraced, reported not gated)",
        f"wrote {ARTIFACT.name}",
    )
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% "
        f"(untraced {untraced:.4f}s, traced {traced:.4f}s)"
    )
