"""Extension: heterogeneous clusters (paper Section 2.1 claim).

The paper states the technique handles clusters that differ in their
function units.  We compare a symmetric 4+4 split against an asymmetric
6+2 split of the same 8-wide budget: both should hide most of the
communication, with the asymmetric machine mildly behind (its narrow
cluster forces more traffic toward the wide one).
"""


from repro.analysis import (
    deviation_table,
    experiment_summary,
    run_sweep,
)
from repro.machine import heterogeneous_gp, two_cluster_gp

from conftest import print_report


def test_heterogeneous_split(benchmark, suite, baseline):
    machines = [
        two_cluster_gp(),                             # 4 + 4
        heterogeneous_gp([6, 2], buses=2, ports=1),   # 6 + 2
        heterogeneous_gp([5, 3], buses=2, ports=1),   # 5 + 3
    ]
    labels = ["4+4", "6+2", "5+3"]

    def run():
        return run_sweep(suite, machines, labels=labels, baseline=baseline)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Extension — heterogeneous 8-wide splits (2 buses, 1 port)",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    for result in results:
        assert result.match_percentage >= 70.0
