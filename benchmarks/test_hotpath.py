"""Hot-path overhaul benchmark: seed pipeline vs optimized pipeline.

Compiles the bench suite (>= 100 loops) through the retained
slow-reference path (``repro.baselines.reference_pipeline`` — monolithic
RecMII, networkx SCCs, min()-scan scheduler, dict-rebuilding MRT) and
through the optimized path (compiled DDG views, memoized per-SCC RecMII,
heap-driven scheduler, counter-based MRT probes), asserts the outcomes
are bit-identical, times the optimized path again through the PR-2
engine serially and with 4 workers, and writes everything to
``BENCH_hotpath.json`` at the repository root, in the shared
:mod:`repro.obs.bench` schema.

The >= 2x throughput assertion compares the seed serial wall time
against the engine's 4-worker wall time and is enforced only when the
host exposes at least 4 usable cores (PR-2 convention): on a single-core
container the parallel leg cannot contribute, and the artifact records
the core count so the recorded speedups are interpretable either way.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_hotpath.py -q``
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.analysis import EngineOptions, run_engine_experiment
from repro.baselines import reference_compile_loop
from repro.core.driver import compile_loop
from repro.machine import two_cluster_gp
from repro.workloads import paper_suite

from conftest import bench_suite_size, print_report

WORKERS = 4
MIN_SPEEDUP = 2.0
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.mark.bench
def test_hotpath_speedup_and_bit_identity():
    n_loops = max(100, bench_suite_size())
    loops = paper_suite(n_loops)
    machine = two_cluster_gp()
    cores = _usable_cores()

    started = time.perf_counter()
    reference = [reference_compile_loop(ddg, machine) for ddg in loops]
    seed_serial_s = time.perf_counter() - started

    started = time.perf_counter()
    optimized = [compile_loop(ddg, machine) for ddg in loops]
    opt_serial_s = time.perf_counter() - started

    for ref, opt in zip(reference, optimized):
        name = opt.ddg.name or "loop"
        assert opt.ii == ref.ii, name
        assert opt.copy_count == ref.copy_count, name
        assert dict(opt.schedule.start) == ref.start, name

    # The PR-2 engine over the optimized path (the experiment legs also
    # compile each loop's unified baseline, so they are not directly
    # comparable to the bare compile loops above — both legs are recorded
    # and compared against each other).
    started = time.perf_counter()
    engine_serial = run_engine_experiment(loops, machine)
    engine_serial_s = time.perf_counter() - started

    started = time.perf_counter()
    engine_parallel = run_engine_experiment(
        loops, machine, options=EngineOptions(workers=WORKERS)
    )
    engine_parallel_s = time.perf_counter() - started
    assert engine_parallel.outcomes == engine_serial.outcomes

    serial_speedup = seed_serial_s / opt_serial_s if opt_serial_s else 0.0
    engine_speedup = (
        engine_serial_s / engine_parallel_s if engine_parallel_s else 0.0
    )
    combined_speedup = serial_speedup * engine_speedup

    enforce_speedup = cores >= WORKERS
    artifact = obs.bench.make_artifact(
        "hotpath",
        metrics={
            "seed_serial_s": round(seed_serial_s, 6),
            "optimized_serial_s": round(opt_serial_s, 6),
            "serial_speedup": round(serial_speedup, 4),
            "engine_serial_s": round(engine_serial_s, 6),
            "engine_parallel_s": round(engine_parallel_s, 6),
            "engine_speedup": round(engine_speedup, 4),
            "combined_speedup": round(combined_speedup, 4),
        },
        regression_metrics=["optimized_serial_s"],
        info={
            "loops": n_loops,
            "machine": machine.name,
            "workers": WORKERS,
            "usable_cores": cores,
            "min_speedup": MIN_SPEEDUP,
            "speedup_enforced": enforce_speedup,
            "outcomes_identical": True,
        },
    )
    obs.bench.write_artifact(artifact, ARTIFACT)

    print_report(
        f"Hot-path overhaul — {n_loops} loops on {machine.name} "
        f"({cores} cores)",
        f"seed serial: {seed_serial_s:.2f}s   "
        f"optimized serial: {opt_serial_s:.2f}s   "
        f"speedup: {serial_speedup:.2f}x",
        f"engine serial: {engine_serial_s:.2f}s   "
        f"engine x{WORKERS}: {engine_parallel_s:.2f}s   "
        f"speedup: {engine_speedup:.2f}x",
        f"combined (seed serial -> optimized x{WORKERS}): "
        f"{combined_speedup:.2f}x",
        f"outcomes bit-identical; wrote {ARTIFACT.name}",
    )
    if enforce_speedup:
        assert combined_speedup >= MIN_SPEEDUP, (
            f"seed-serial -> optimized-{WORKERS}-worker speedup "
            f"{combined_speedup:.2f}x below {MIN_SPEEDUP:.1f}x on a "
            f"{cores}-core host"
        )
