"""Ablation: SCC-first node grouping (paper Section 4.1).

With SCC priority disabled the SMS sweep still runs, but critical
recurrences get neither first pick of the empty clusters nor cluster
affinity in selection — the paper's Observation Two scenario (copies
landing inside SCCs raise RecMII and therefore II).
"""


from repro.analysis import (
    deviation_table,
    experiment_summary,
    run_variant_comparison,
)
from repro.core import HEURISTIC_ITERATIVE, NO_SCC_FIRST
from repro.machine import two_cluster_gp

from conftest import print_report


def test_ablation_scc_first(benchmark, suite, baseline):
    # 1-bus pressure makes SCC splits likelier when unprotected.
    machine = two_cluster_gp(buses=1)

    def run():
        return run_variant_comparison(
            suite, machine, [NO_SCC_FIRST, HEURISTIC_ITERATIVE],
            baseline=baseline,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Ablation — SCC-first grouping (2 clusters, 1 bus)",
        deviation_table(results),
        "\n".join(experiment_summary(result) for result in results),
    )

    without, full = results
    assert full.match_percentage >= without.match_percentage - 2.0
